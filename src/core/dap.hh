/**
 * @file
 * Dynamic Activation Pruning (DAP, paper Sec. 5.1 and 6.2, Fig. 8).
 *
 * Activations are produced at run time, so the A-DBB density bound is
 * enforced in hardware by a DAP array sitting between the MCU/DMA and
 * the activation SRAM: cascaded magnitude-maxpool stages select the
 * Top-NNZ elements of each BZ-block. The stage count is capped at 5,
 * so supported A-DBB ratios are 1/8 .. 5/8 plus a dense (8/8) bypass.
 *
 * Two implementations are provided and tested against each other:
 *  - dapSelectMask(): the software reference (Top-NNZ by magnitude);
 *  - DapUnit: a stage-by-stage model of the comparator cascade that
 *    also counts comparator operations for the energy model.
 */

#ifndef S2TA_CORE_DAP_HH
#define S2TA_CORE_DAP_HH

#include <vector>

#include "core/dbb.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** Static configuration of the DAP hardware array. */
struct DapConfig
{
    /** Block size; the shipped design fixes BZ = 8 (Sec. 6.2). */
    int bz = 8;
    /** Cascaded maxpool stages; the paper caps this at 5. */
    int max_stages = 5;

    /** A-DBB NNZ values this hardware can enforce (plus bypass). */
    bool
    supports(int nnz) const
    {
        return (nnz >= 1 && nnz <= max_stages) || nnz == bz;
    }
};

/** Counters produced while DAP processes a tensor. */
struct DapStats
{
    /** Blocks pushed through the comparator cascade. */
    int64_t blocks = 0;
    /** Blocks that bypassed the cascade (dense 8/8 mode). */
    int64_t bypassed_blocks = 0;
    /** Total 8-bit magnitude comparisons performed. */
    int64_t comparisons = 0;
    /** Non-zero elements zeroed by the density bound. */
    int64_t nonzeros_dropped = 0;
    /** Non-zero elements before pruning. */
    int64_t nonzeros_before = 0;
    /** Activation L2 energy retained, in [0, 1]. */
    double l2_retained = 1.0;
};

/**
 * Software reference: positional mask of the Top-NNZ magnitude
 * elements (lowest index wins ties; zeros never selected).
 */
Mask8 dapSelectMask(std::span<const int8_t> block, int nnz);

/**
 * Cycle-level model of one DAP unit (Fig. 8): a cascade of magnitude
 * maxpool stages, each built from BZ-1 comparators. Guaranteed to
 * produce the same mask as dapSelectMask(); additionally reports the
 * winner order and comparator activity.
 */
class DapUnit
{
  public:
    explicit DapUnit(DapConfig cfg = DapConfig{});

    /** Result of pushing one block through the cascade. */
    struct BlockResult
    {
        /** Positions selected, in stage (descending-magnitude)
         *  order; may be shorter than nnz if the block ran out of
         *  non-zeros. */
        std::vector<int> winner_positions;
        /** Final keep mask (union of winners). */
        Mask8 mask = 0;
        /** Comparator operations consumed. */
        int comparisons = 0;
    };

    /**
     * Run the cascade for an @p nnz bound (1..max_stages). Dense
     * bypass (nnz == bz) returns the trivial all-nonzero mask with
     * zero comparisons.
     */
    BlockResult process(std::span<const int8_t> block, int nnz) const;

    const DapConfig &config() const { return cfg; }

  private:
    DapConfig cfg;
};

/**
 * Prune an activation tensor in place along its channel (innermost)
 * dimension with an @p nnz bound per block, as the DAP array does
 * when activations are written to SRAM. Partial tail blocks of
 * r < bz elements use the bound min(nnz, r).
 */
DapStats dapPruneTensor(Int8Tensor &t, int nnz,
                        const DapConfig &cfg = DapConfig{});

/** GEMM-level variant for synthetic microbenchmark operands. */
DapStats dapPruneActivations(GemmProblem &p, int nnz,
                             const DapConfig &cfg = DapConfig{});

/**
 * Per-layer A-DBB density auto-tuning (paper Sec. 5.2: density is
 * tuned per layer, from 8/8 in early layers down to 2/8 late).
 *
 * Chooses the smallest supported NNZ whose Top-NNZ pruning retains at
 * least @p min_l2_retention of the activation L2 energy; falls back
 * to the dense bypass when even NNZ = max_stages cannot meet it.
 */
int chooseLayerNnz(const Int8Tensor &activations,
                   double min_l2_retention = 0.98,
                   const DapConfig &cfg = DapConfig{});

} // namespace s2ta

#endif // S2TA_CORE_DAP_HH
