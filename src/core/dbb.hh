/**
 * @file
 * Density Bound Block (DBB) sparse format (paper Sec. 3.1, Fig. 4/5).
 *
 * A tensor is tiled into BZ-element blocks along the channel
 * dimension; each block stores at most NNZ non-zero values plus an
 * 8-bit positional bitmask. A block is referred to by its ratio
 * NNZ/BZ (e.g. "4/8"). Blocks holding fewer than NNZ non-zeros are
 * padded with zero values in compressed form.
 */

#ifndef S2TA_CORE_DBB_HH
#define S2TA_CORE_DBB_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/bitmask.hh"
#include "tensor/gemm.hh"

namespace s2ta {

/** A DBB density specification: at most nnz non-zeros per bz block. */
struct DbbSpec
{
    int nnz = 4;
    int bz = 8;

    /** Density upper bound nnz / bz. */
    double density() const { return static_cast<double>(nnz) / bz; }

    /** Sparsity lower bound 1 - nnz / bz. */
    double sparsity() const { return 1.0 - density(); }

    /** Render as "4/8". */
    std::string toString() const;

    /** True when the spec admits any 8-bit content (nnz == bz). */
    bool isDense() const { return nnz == bz; }

    /**
     * Storage bytes per block: nnz values plus the mask byte, or bz
     * raw bytes when dense (no mask needed).
     */
    int storedBytesPerBlock() const { return isDense() ? bz : nnz + 1; }

    bool
    valid() const
    {
        return bz >= 1 && bz <= 8 && nnz >= 1 && nnz <= bz;
    }

    bool operator==(const DbbSpec &) const = default;
};

/**
 * One compressed DBB block: up to 8 stored values and the positional
 * bitmask M. Storage cost is nnz value bytes plus one mask byte.
 */
struct DbbBlock
{
    /** Compressed values; slots beyond popcount(mask) hold zero. */
    std::array<int8_t, 8> values{};
    /** Bit i set <=> expanded position i holds values[rank(i)]. */
    Mask8 mask = 0;

    /** Number of stored (mask-flagged) elements. */
    int storedCount() const { return maskPopcount(mask); }

    /** Expanded value at position i in [0, bz). */
    int8_t
    expandedAt(int i) const
    {
        if (!maskTest(mask, i))
            return 0;
        return values[static_cast<size_t>(maskRank(mask, i))];
    }
};

/**
 * Mask-intersection dot product of one block pair: the DBB-native
 * fast path. A single AND of the two positional masks yields the
 * matched positions; each match gathers its stored values by rank.
 * Work is O(popcount(a.mask & w.mask)), not O(bz), and the INT32 sum
 * is bit-identical to the dense product of the expanded blocks
 * (skipped terms are exactly zero).
 */
inline int32_t
dbbDotBlocks(const DbbBlock &a, const DbbBlock &w)
{
    int32_t acc = 0;
    for (Mask8 inter = maskAnd(a.mask, w.mask); inter;
         inter = maskClearLowest(inter)) {
        const int pos = maskLowestSetBit(inter);
        acc += static_cast<int32_t>(
                   a.values[static_cast<size_t>(
                       maskRankUnchecked(a.mask, pos))]) *
               static_cast<int32_t>(
                   w.values[static_cast<size_t>(
                       maskRankUnchecked(w.mask, pos))]);
    }
    return acc;
}

/**
 * Mask-intersection dot product over @p nblocks consecutive block
 * pairs (one activation row against one weight column).
 */
inline int32_t
dbbDotRow(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    int32_t acc = 0;
    for (int b = 0; b < nblocks; ++b)
        acc += dbbDotBlocks(a[b], w[b]);
    return acc;
}

/**
 * Encode a dense block into DBB form.
 *
 * The block must already satisfy the density bound (apply a pruner
 * from core/weight_pruner.hh or core/dap.hh first); encoding never
 * drops data.
 *
 * @param dense exactly spec.bz elements.
 * @param spec density bound; popcount of non-zeros must be <= nnz.
 */
DbbBlock dbbEncode(std::span<const int8_t> dense, const DbbSpec &spec);

/** Decode a block back to dense form (bz elements written). */
void dbbDecode(const DbbBlock &block, const DbbSpec &spec,
               std::span<int8_t> dense_out);

/** True if the dense block satisfies the density bound. */
bool dbbSatisfies(std::span<const int8_t> dense, const DbbSpec &spec);

/**
 * A GEMM operand compressed in DBB form along the K dimension.
 *
 * For weights (K x N) vectors run down each column; for activations
 * (M x K) vectors run along each row. 'vectors' is the number of
 * rows/columns and 'blocks_per_vector' is ceil(K / bz); when bz does
 * not divide K the tail block is zero-padded, which encodes
 * losslessly (padding positions simply stay unset in the mask).
 */
class DbbMatrix
{
  public:
    DbbMatrix() = default;

    /**
     * Compress the weight operand of @p p (K x N, blocked along K).
     * Every block of every column must satisfy @p spec.
     */
    static DbbMatrix fromWeights(const GemmProblem &p,
                                 const DbbSpec &spec);

    /**
     * Compress the activation operand of @p p (M x K, blocked along
     * K). Every block of every row must satisfy @p spec.
     */
    static DbbMatrix fromActivations(const GemmProblem &p,
                                     const DbbSpec &spec);

    /**
     * Reassemble a matrix from already-encoded blocks — the plan
     * store and spill-tier hydration paths, which recover blocks
     * from a serialized image instead of re-encoding operands.
     * @p blks must hold exactly vectors * blocks_per_vector blocks
     * in vector-major order (the layout vectorBlocks exposes).
     */
    static DbbMatrix
    fromParts(DbbSpec s, int vectors, int blocks_per_vector,
              std::vector<DbbBlock> blks)
    {
        s2ta_assert(blks.size() == static_cast<size_t>(vectors) *
                                       blocks_per_vector,
                    "%zu blocks for %d x %d", blks.size(), vectors,
                    blocks_per_vector);
        return DbbMatrix(s, vectors, blocks_per_vector,
                         std::move(blks));
    }

    const DbbSpec &spec() const { return dbb_spec; }
    int vectors() const { return n_vectors; }
    int blocksPerVector() const { return n_blocks; }

    /** Block @p b of vector @p v. */
    const DbbBlock &
    block(int v, int b) const
    {
        s2ta_assert(v >= 0 && v < n_vectors && b >= 0 && b < n_blocks,
                    "block (%d, %d)", v, b);
        return blks[static_cast<size_t>(v) * n_blocks + b];
    }

    /**
     * Unchecked pointer to the blocks of vector @p v, for the hot
     * kernels (dbbDotRow et al.).
     */
    const DbbBlock *
    vectorBlocks(int v) const
    {
        return blks.data() + static_cast<size_t>(v) * n_blocks;
    }

    /** True when expanded position @p kk of vector @p v is non-zero;
     *  a pure mask test, no value gather. */
    bool
    nonZeroAt(int v, int kk) const
    {
        const DbbBlock &blk =
            blks[static_cast<size_t>(v) * n_blocks +
                 kk / dbb_spec.bz];
        return (blk.mask >> (kk % dbb_spec.bz)) & 1u;
    }

    /**
     * Compressed storage footprint in bytes: nnz value bytes plus one
     * mask byte per block (paper Fig. 5).
     */
    int64_t compressedBytes() const;

    /** Dense storage footprint in bytes. */
    int64_t
    denseBytes() const
    {
        return static_cast<int64_t>(n_vectors) * n_blocks *
               dbb_spec.bz;
    }

    /** Mean stored-value occupancy over all blocks, in [0, 1]. */
    double occupancy() const;

    /**
     * Decompress back to a dense row-major matrix of
     * vectors x (blocksPerVector() * bz); when bz does not divide
     * the original K, the tail columns hold the zero padding.
     */
    std::vector<int8_t> toDense() const;

  private:
    DbbMatrix(DbbSpec s, int vectors, int blocks)
        : dbb_spec(s), n_vectors(vectors), n_blocks(blocks),
          blks(static_cast<size_t>(vectors) * blocks)
    {}

    /** Adopt already-encoded blocks without the zero-fill pass
     *  (the hydration paths memcpy/decode straight into place). */
    DbbMatrix(DbbSpec s, int vectors, int blocks,
              std::vector<DbbBlock> b)
        : dbb_spec(s), n_vectors(vectors), n_blocks(blocks),
          blks(std::move(b))
    {}

    DbbSpec dbb_spec;
    int n_vectors = 0;
    int n_blocks = 0;
    std::vector<DbbBlock> blks;
};

} // namespace s2ta

#endif // S2TA_CORE_DBB_HH
