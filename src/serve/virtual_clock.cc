#include "serve/virtual_clock.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace s2ta {
namespace serve {

std::vector<LaneAssignment>
scheduleOnLanes(const VirtualClockConfig &cfg,
                const std::vector<TimedRequest> &reqs,
                const AdmissionPolicy &policy)
{
    s2ta_assert(cfg.lanes >= 1, "lanes=%d", cfg.lanes);
    s2ta_assert(cfg.clock_ghz > 0.0, "clock_ghz=%g", cfg.clock_ghz);
    const size_t n = reqs.size();
    for (const TimedRequest &r : reqs) {
        s2ta_assert(r.arrival_s >= 0.0, "arrival %g < 0",
                    r.arrival_s);
        s2ta_assert(r.service_cycles >= 0, "service %lld < 0",
                    static_cast<long long>(r.service_cycles));
    }

    // Admission indices in arrival order; stable_sort keeps equal
    // arrivals in admission order, so the ready set below is always
    // built deterministically.
    std::vector<size_t> by_arrival(n);
    std::iota(by_arrival.begin(), by_arrival.end(), size_t{0});
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [&](size_t a, size_t b) {
                         return reqs[a].arrival_s <
                                reqs[b].arrival_s;
                     });

    std::vector<LaneAssignment> out(n);
    std::vector<double> lane_free(static_cast<size_t>(cfg.lanes),
                                  0.0);
    // Requests arrived by the current horizon and not yet
    // dispatched, kept in ascending admission order (the contract
    // AdmissionPolicy::pick relies on for tie-breaking).
    std::vector<size_t> ready;
    size_t next_arrival = 0; // cursor into by_arrival

    const auto admit_until = [&](double horizon) {
        bool added = false;
        while (next_arrival < n &&
               reqs[by_arrival[next_arrival]].arrival_s <=
                   horizon) {
            ready.push_back(by_arrival[next_arrival++]);
            added = true;
        }
        if (added)
            std::sort(ready.begin(), ready.end());
    };

    for (size_t dispatched = 0; dispatched < n; ++dispatched) {
        // Earliest-free lane, lowest index on ties.
        size_t lane = 0;
        for (size_t l = 1; l < lane_free.size(); ++l) {
            if (lane_free[l] < lane_free[lane])
                lane = l;
        }
        double t = lane_free[lane];
        admit_until(t);
        if (ready.empty()) {
            // Work conservation: the lane idles only until the next
            // arrival (which must exist — not everything is
            // dispatched and nothing is ready).
            t = reqs[by_arrival[next_arrival]].arrival_s;
            admit_until(t);
        }
        const size_t i = policy.pick(reqs, ready);
        const auto it =
            std::find(ready.begin(), ready.end(), i);
        s2ta_assert(it != ready.end(),
                    "policy '%s' picked index %zu outside the "
                    "ready set", policy.name(), i);
        ready.erase(it);

        out[i].lane = static_cast<int>(lane);
        out[i].start_s = t;
        out[i].finish_s =
            t + cfg.cyclesToSeconds(reqs[i].service_cycles);
        lane_free[lane] = out[i].finish_s;
    }
    return out;
}

std::vector<double>
poissonArrivals(int n, double rate_rps, Rng &rng)
{
    s2ta_assert(n >= 0, "n=%d", n);
    s2ta_assert(rate_rps > 0.0, "rate_rps=%g", rate_rps);
    std::vector<double> arrivals(static_cast<size_t>(n));
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        // Inverse-CDF exponential gap; u in [0, 1) keeps the log
        // argument strictly positive.
        const double u = rng.uniformReal();
        t += -std::log1p(-u) / rate_rps;
        arrivals[static_cast<size_t>(i)] = t;
    }
    return arrivals;
}

} // namespace serve
} // namespace s2ta
