#include "serve/virtual_clock.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace s2ta {
namespace serve {

std::vector<LaneAssignment>
scheduleOnLanes(const VirtualClockConfig &cfg,
                const std::vector<TimedRequest> &reqs,
                const AdmissionPolicy &policy)
{
    return scheduleOnLanes(cfg, reqs, policy, OverloadConfig{},
                           nullptr);
}

std::vector<LaneAssignment>
scheduleOnLanes(const VirtualClockConfig &cfg,
                const std::vector<TimedRequest> &reqs,
                const AdmissionPolicy &policy,
                const OverloadConfig &overload,
                ScheduleStats *stats)
{
    s2ta_assert(cfg.lanes >= 1, "lanes=%d", cfg.lanes);
    s2ta_assert(cfg.clock_ghz > 0.0, "clock_ghz=%g", cfg.clock_ghz);
    const size_t n = reqs.size();
    for (const TimedRequest &r : reqs) {
        s2ta_assert(r.arrival_s >= 0.0, "arrival %g < 0",
                    r.arrival_s);
        s2ta_assert(r.service_cycles >= 0, "service %lld < 0",
                    static_cast<long long>(r.service_cycles));
        s2ta_assert(r.extra_delay_s >= 0.0, "extra delay %g < 0",
                    r.extra_delay_s);
    }

    // Admission indices in arrival order; stable_sort keeps equal
    // arrivals in admission order, so the ready set below is always
    // built deterministically.
    std::vector<size_t> by_arrival(n);
    std::iota(by_arrival.begin(), by_arrival.end(), size_t{0});
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [&](size_t a, size_t b) {
                         return reqs[a].arrival_s <
                                reqs[b].arrival_s;
                     });

    std::vector<LaneAssignment> out(n);
    std::vector<double> lane_free(static_cast<size_t>(cfg.lanes),
                                  0.0);
    // Requests arrived by the current horizon and not yet
    // dispatched, kept in ascending admission order (the contract
    // AdmissionPolicy::pick relies on for tie-breaking).
    std::vector<size_t> ready;
    std::vector<int64_t> stream_depth;
    size_t next_arrival = 0; // cursor into by_arrival
    size_t done = 0;         // dispatched + shed
    ScheduleStats st;

    const auto depthSlot = [&](int stream) -> int64_t & {
        s2ta_assert(stream >= 0, "stream %d < 0", stream);
        if (static_cast<size_t>(stream) >= stream_depth.size())
            stream_depth.resize(static_cast<size_t>(stream) + 1, 0);
        return stream_depth[static_cast<size_t>(stream)];
    };

    const auto shed = [&](size_t idx, ShedReason why, double at) {
        out[idx].lane = -1;
        out[idx].start_s = at;
        out[idx].finish_s = at;
        out[idx].shed = why;
        ++done;
        switch (why) {
          case ShedReason::QueueFull: ++st.shed_queue_full; break;
          case ShedReason::StreamQueueFull:
            ++st.shed_stream_full;
            break;
          case ShedReason::DeadlineInfeasible:
            ++st.shed_infeasible;
            break;
          case ShedReason::None:
            s2ta_panic("shed with ShedReason::None");
        }
    };

    const auto admit_until = [&](double horizon) {
        bool added = false;
        while (next_arrival < n &&
               reqs[by_arrival[next_arrival]].arrival_s <=
                   horizon) {
            const size_t idx = by_arrival[next_arrival++];
            const TimedRequest &r = reqs[idx];
            // Queue caps apply the instant a request arrives: an
            // arrival over a full queue is shed immediately, even
            // if the queue drains a virtual instant later. Both
            // checks run over deterministic virtual-time state, so
            // the shed set is thread-count independent.
            if (overload.global_queue_cap > 0 &&
                static_cast<int64_t>(ready.size()) >=
                    overload.global_queue_cap) {
                shed(idx, ShedReason::QueueFull, r.arrival_s);
                continue;
            }
            if (overload.stream_queue_cap > 0 &&
                depthSlot(r.stream) >= overload.stream_queue_cap) {
                shed(idx, ShedReason::StreamQueueFull, r.arrival_s);
                continue;
            }
            ready.push_back(idx);
            ++depthSlot(r.stream);
            st.max_queue_depth = std::max(
                st.max_queue_depth,
                static_cast<int64_t>(ready.size()));
            added = true;
        }
        if (added)
            std::sort(ready.begin(), ready.end());
    };

    while (done < n) {
        // Earliest-free lane, lowest index on ties.
        size_t lane = 0;
        for (size_t l = 1; l < lane_free.size(); ++l) {
            if (lane_free[l] < lane_free[lane])
                lane = l;
        }
        double t = lane_free[lane];
        admit_until(t);
        while (ready.empty() && done < n) {
            // Work conservation: the lane idles only until the next
            // arrival (which must exist — not everything is done
            // and nothing is ready).
            t = reqs[by_arrival[next_arrival]].arrival_s;
            admit_until(t);
        }
        if (ready.empty())
            break; // everything remaining was shed at admission

        if (overload.shed_infeasible) {
            // Late shedding: a waiting request that cannot meet its
            // deadline even if dispatched *right now* only wastes
            // lane time; drop it before the policy sees it.
            for (auto it = ready.begin(); it != ready.end();) {
                const TimedRequest &r = reqs[*it];
                const double fin =
                    t + cfg.cyclesToSeconds(r.est_cycles) +
                    r.extra_delay_s;
                if (fin > r.deadline_s) {
                    --depthSlot(r.stream);
                    shed(*it, ShedReason::DeadlineInfeasible, t);
                    it = ready.erase(it);
                } else {
                    ++it;
                }
            }
            if (ready.empty())
                continue; // advance time / admit more
        }

        const size_t i = policy.pick(reqs, ready);
        const auto it =
            std::find(ready.begin(), ready.end(), i);
        s2ta_assert(it != ready.end(),
                    "policy '%s' picked index %zu outside the "
                    "ready set", policy.name(), i);
        ready.erase(it);
        --depthSlot(reqs[i].stream);

        out[i].lane = static_cast<int>(lane);
        out[i].start_s = t;
        out[i].finish_s =
            t + cfg.cyclesToSeconds(reqs[i].service_cycles) +
            reqs[i].extra_delay_s;
        lane_free[lane] = out[i].finish_s;
        ++done;
        ++st.dispatched;
    }
    if (stats != nullptr)
        *stats = st;
    return out;
}

std::vector<double>
poissonArrivals(int n, double rate_rps, Rng &rng)
{
    s2ta_assert(n >= 0, "n=%d", n);
    s2ta_assert(rate_rps > 0.0, "rate_rps=%g", rate_rps);
    std::vector<double> arrivals(static_cast<size_t>(n));
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        // Inverse-CDF exponential gap; u in [0, 1) keeps the log
        // argument strictly positive.
        const double u = rng.uniformReal();
        t += -std::log1p(-u) / rate_rps;
        arrivals[static_cast<size_t>(i)] = t;
    }
    return arrivals;
}

} // namespace serve
} // namespace s2ta
