#include "serve/router.hh"

#include <algorithm>

#include "base/fault_injection.hh"
#include "base/logging.hh"

namespace s2ta {
namespace serve {

const char *
placementName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::ConsistentHash: return "hash";
      case PlacementKind::LeastLoaded: return "least-loaded";
    }
    s2ta_panic("unknown placement %d", int(kind));
}

PlacementKind
placementByName(const std::string &name)
{
    if (name == "hash")
        return PlacementKind::ConsistentHash;
    if (name == "least-loaded")
        return PlacementKind::LeastLoaded;
    s2ta_fatal("unknown placement '%s' (accepted values: %s)",
               name.c_str(), placementNameList());
}

uint64_t
workloadIdentity(const std::string &model, int batch)
{
    // FNV-1a over the name, folded with the batch via the same
    // splitmix64-style combiner fault identities use.
    uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : model) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return FaultInjector::combineId(h,
                                    static_cast<uint64_t>(batch));
}

ReplicaRouter::ReplicaRouter(int replicas, PlacementKind kind,
                             uint64_t seed)
    : n_replicas(replicas), placement(kind)
{
    s2ta_assert(replicas >= 1, "replicas=%d", replicas);
    if (placement == PlacementKind::ConsistentHash) {
        ring.reserve(static_cast<size_t>(replicas) * kVNodes);
        for (int r = 0; r < replicas; ++r) {
            for (int v = 0; v < kVNodes; ++v) {
                const uint64_t pos = FaultInjector::combineId(
                    FaultInjector::combineId(
                        seed, static_cast<uint64_t>(r)),
                    static_cast<uint64_t>(v));
                ring.push_back(VNode{pos, r});
            }
        }
        std::sort(ring.begin(), ring.end());
    }
}

int
ReplicaRouter::route(uint64_t identity,
                     const std::vector<bool> &routable,
                     const std::vector<int64_t> &outstanding,
                     int exclude) const
{
    s2ta_assert(static_cast<int>(routable.size()) == n_replicas,
                "routable set size %zu != %d replicas",
                routable.size(), n_replicas);
    const auto candidate = [&](int r) {
        return r != exclude && routable[static_cast<size_t>(r)];
    };

    if (placement == PlacementKind::LeastLoaded) {
        s2ta_assert(static_cast<int>(outstanding.size()) ==
                        n_replicas,
                    "outstanding size %zu != %d replicas",
                    outstanding.size(), n_replicas);
        int best = -1;
        for (int r = 0; r < n_replicas; ++r) {
            if (!candidate(r))
                continue;
            if (best < 0 ||
                outstanding[static_cast<size_t>(r)] <
                    outstanding[static_cast<size_t>(best)])
                best = r;
        }
        return best;
    }

    // Consistent hash: binary-search the ring for the first virtual
    // node at or after the key, then walk clockwise (wrapping) to
    // the first node whose replica is a candidate.
    const VNode probe{identity, -1};
    size_t start = static_cast<size_t>(
        std::lower_bound(ring.begin(), ring.end(), probe) -
        ring.begin());
    for (size_t i = 0; i < ring.size(); ++i) {
        const VNode &vn = ring[(start + i) % ring.size()];
        if (candidate(vn.replica))
            return vn.replica;
    }
    return -1;
}

} // namespace serve
} // namespace s2ta
