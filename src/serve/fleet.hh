/**
 * @file
 * Fault-tolerant fleet serving: one scheduler routing streams
 * across N Accelerator replicas — optionally heterogeneous array
 * configs — each with its own PlanCache over one shared PlanStore,
 * all in the deterministic virtual clock.
 *
 * The single-accelerator StreamScheduler hardened one failure
 * domain: a request (faults retry, overload sheds, the scheduler
 * never dies). The fleet scheduler hardens the next one up: a
 * *replica* can crash, brown out, drain, or restart without losing
 * requests. The moving parts:
 *
 *  - **Routing** (serve/router.hh): every request instance is
 *    placed by consistent-hash (workload-keyed, cache affinity) or
 *    least-loaded placement over the replicas the scheduler
 *    currently believes healthy.
 *  - **Failure detection from missed completions**: a crash kills
 *    the replica's running and queued instances silently; the
 *    scheduler learns of it at the earlier of the first missed
 *    completion (the earliest expected finish among the killed
 *    running instances) and the heartbeat bound
 *    crash + detect_delay_s.
 *  - **Bounded failover**: a detected-lost instance whose request
 *    has no other live instance is re-dispatched to a healthy
 *    replica (the crashed one excluded), at most max_failovers
 *    times per request, reusing the PR 6 retry/backoff semantics
 *    for the compute attempts of every instance. With the budget
 *    exhausted — or no routable replica left and none restarting —
 *    the request fails with a typed loss, never silently.
 *  - **Draining**: a draining replica finishes its queued and
 *    running work but receives no new placements; drain end
 *    returns it to rotation.
 *  - **Warm restart**: a restarted replica comes back with cold
 *    lanes but warm plans — its PlanCache sits over the shared
 *    PlanStore, so nothing is re-encoded (the PR 5 warm-start
 *    path, now a fleet recovery property).
 *  - **Hedged requests** (opt-in, hedge_delay_s > 0): a request
 *    still unresolved hedge_delay_s after arrival launches one
 *    duplicate instance on a different replica; the first
 *    completion wins, the loser is cancelled (if queued) or runs
 *    to waste (if running — lanes are non-preemptive), and every
 *    hedge reconciles in the counters as exactly one of
 *    win/loss/failed.
 *
 * Determinism contract: simulations fan out across a thread pool
 * (one per distinct (workload, replica) pair — requests carrying
 * the same workload are the same simulation, so results are
 * per-pair by construction); the event loop that routes,
 * dispatches, detects, fails over, and hedges runs serially on the
 * draining thread over deterministic inputs. Outcomes, timings,
 * failover sets, and hedge decisions are therefore identical at
 * every thread count, and every Ok completion's NetworkRun is
 * bitwise identical to a single-accelerator run of the same
 * workload (enforced by bench_fleet_serving and the serve tests).
 */

#ifndef S2TA_SERVE_FLEET_HH
#define S2TA_SERVE_FLEET_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/accelerator.hh"
#include "serve/router.hh"
#include "serve/stream_scheduler.hh"
#include "serve/telemetry.hh"
#include "serve/virtual_clock.hh"

namespace s2ta {

class Backend;
class PlanCache;
class ThreadPool;

namespace serve {

/** One replica of the fleet: an accelerator plus its own plan
 *  cache (typically attached to the fleet's shared PlanStore).
 *  Both borrowed; the cache may be null. */
struct FleetReplica
{
    const Accelerator *accel = nullptr;
    PlanCache *cache = nullptr;
    /**
     * Optional async device backend this replica is driven through
     * (arch/backend.hh); borrowed, nullptr = direct Accelerator
     * calls. Results stay bitwise identical either way; the
     * backend adds modeled link-transfer time to the replica's
     * service cycles (the share its queue's double buffering
     * cannot hide), which placement estimates and completions then
     * see. Its device config should match `accel`'s.
     */
    Backend *backend = nullptr;
};

/** One scripted (or fault-derived) replica lifecycle event. */
struct ReplicaEvent
{
    enum class Kind
    {
        /** The replica dies: running and queued instances are
         *  lost; nothing is served until a Restart. */
        Crash,
        /** A crashed replica returns: cold lanes, warm plans. */
        Restart,
        /** Brownout: requests dispatched while it lasts run
         *  slowdown x slower (timing only, results untouched). */
        BrownoutStart,
        BrownoutEnd,
        /** Graceful drain: no new placements, queued and running
         *  work completes. */
        DrainStart,
        DrainEnd,
    };

    int replica = 0;
    Kind kind = Kind::Crash;
    /** Virtual instant the event applies at. */
    double at_s = 0.0;
    /** Service-time inflation factor (BrownoutStart only, > 1). */
    double slowdown = 1.0;
};

/** Artifact name of a replica event kind ("crash", ...). */
const char *replicaEventKindName(ReplicaEvent::Kind kind);

/**
 * Derive a deterministic replica lifecycle timeline from the
 * injector's replica-scoped sites: time is cut into slots of
 * @p slot_s seconds, and per (replica, slot) — identity
 * combineId(replica, slot) — an up replica rolls ReplicaCrash and
 * (independently) ReplicaStall for a one-slot brownout at
 * @p brownout_slowdown, while a down replica rolls ReplicaRestart.
 * The injector's per-site injected counters therefore reconcile
 * exactly with the crash/restart/brownout events the schedule
 * carries. Pure in (injector seed, rates, replicas, horizon,
 * slot) aside from the injector's counters.
 */
std::vector<ReplicaEvent>
deriveReplicaSchedule(const FaultInjector &fi, int replicas,
                      double horizon_s, double slot_s,
                      double brownout_slowdown = 2.0);

/** One completed fleet request: the single-accelerator completion
 *  plus where it was served and what it survived. */
struct FleetCompletion : Completion
{
    /** Replica that served (or terminally failed) the request;
     *  -1 when shed or lost before any dispatch. */
    int replica = -1;
    /** Crash-driven re-dispatches this request consumed. */
    int failovers = 0;
    /** Dispatch instances created (1 + failovers + hedge). */
    int instances = 1;
    /** A hedge instance was launched for this request. */
    bool hedged = false;
    /** The hedge instance delivered the winning completion. */
    bool hedge_won = false;
    /** Failed because replica loss exhausted the failover budget
     *  (or left no routable replica), not because of compute
     *  faults. */
    bool lost_to_crash = false;
};

/** Aggregate counters over everything a fleet scheduler drained. */
struct FleetStats
{
    int64_t requests = 0;
    int64_t completed = 0;
    /** Requests resolved Failed = failed_compute + failed_crash. */
    int64_t failed = 0;
    /** Retry budget exhausted on every instance. */
    int64_t failed_compute = 0;
    /** Replica loss exhausted the failover budget / no replica. */
    int64_t failed_crash = 0;
    int64_t shed_queue_full = 0;
    int64_t shed_stream_full = 0;
    int64_t shed_infeasible = 0;
    /** Served-work totals (Ok requests only). */
    int64_t layers = 0;
    int64_t gemms = 0;
    int64_t dense_macs = 0;

    // Instance accounting. faulted_attempts == retries +
    // failed_instances holds exactly (the PR 6 reconciliation, per
    // instance instead of per request).
    int64_t instances = 0;
    int64_t failovers = 0;
    /** Instances killed by a replica crash. */
    int64_t lost_instances = 0;
    int64_t retries = 0;
    int64_t faulted_attempts = 0;
    /** Instances whose whole retry budget faulted. */
    int64_t failed_instances = 0;
    int64_t layer_faults = 0;
    int64_t stall_events = 0;
    int64_t stall_cycles = 0;
    /** Modeled backend link-transfer cycles of served requests
     *  (timing-only; 0 when no replica has a device backend). */
    int64_t transfer_cycles = 0;

    // Replica lifecycle.
    int64_t crashes = 0;
    int64_t restarts = 0;
    int64_t brownouts = 0;
    int64_t drains = 0;

    /** High-water queued-instance depth across the fleet. */
    int64_t max_queue_depth = 0;
    /** Latest completion instant the drain produced. */
    double makespan_s = 0.0;

    int64_t
    shedTotal() const
    {
        return shed_queue_full + shed_stream_full + shed_infeasible;
    }

    /** Zero-lost-requests invariant: every submission resolved to
     *  exactly one Ok / Shed / Failed, and the attempt ledger
     *  balances. */
    bool
    reconciles() const
    {
        return requests == completed + failed + shedTotal() &&
               failed == failed_compute + failed_crash &&
               faulted_attempts == retries + failed_instances;
    }
};

class FleetScheduler
{
  public:
    struct Options
    {
        /** Shared simulation knobs. run.plan_cache is ignored —
         *  each replica's own cache (FleetReplica::cache) is used
         *  for its simulations; run.fault arms per-attempt compute
         *  faults and stalls exactly as in StreamScheduler. */
        NetworkRunOptions run;
        /** Simulation fan-out lanes (0 = process-wide pool, 1 =
         *  serial, N > 1 = dedicated pool), as in StreamScheduler.
         *  Results and virtual timings are identical at any
         *  setting. */
        int threads = 0;
        /** Per-replica virtual deployment: lanes and clock. */
        VirtualClockConfig clock;
        /** Dispatch-order policy within each replica's queue;
         *  borrowed, nullptr = round-robin. */
        const AdmissionPolicy *policy = nullptr;
        /** Queue caps, infeasible shedding, and the per-instance
         *  retry budget + backoff (PR 6 semantics). */
        OverloadConfig overload;
        /** Placement policy for the router. */
        PlacementKind placement = PlacementKind::LeastLoaded;
        /** Consistent-hash ring seed. */
        uint64_t ring_seed = 0xF1EE7;
        /** Heartbeat bound on failure detection: a crash is
         *  detected at the earlier of the first missed completion
         *  and crash + detect_delay_s (0 = the heartbeat detects
         *  immediately). */
        double detect_delay_s = 0.0;
        /** Crash-driven re-dispatches allowed per request. */
        int max_failovers = 2;
        /** Hedge launch delay after arrival; 0 = hedging off. */
        double hedge_delay_s = 0.0;
        /** Scripted replica lifecycle (see deriveReplicaSchedule
         *  for the fault-derived variant). Applied per drain(). */
        std::vector<ReplicaEvent> schedule;
        /** Invoked once per completion during drain(), in
         *  deterministic admission order. */
        std::function<void(const FleetCompletion &)> on_complete;
    };

    /**
     * @param replicas the fleet; accelerators (and caches, when
     *        set) are borrowed and must outlive the scheduler.
     */
    FleetScheduler(std::vector<FleetReplica> replicas, Options opts);
    ~FleetScheduler();

    FleetScheduler(const FleetScheduler &) = delete;
    FleetScheduler &operator=(const FleetScheduler &) = delete;

    int replicas() const { return static_cast<int>(fleet.size()); }

    /** Append a request (same contract as StreamScheduler::submit;
     *  ids are assigned in submission order). */
    uint64_t submit(int stream, const ModelWorkload &mw,
                    double arrival_s = 0.0,
                    double deadline_s = kNoDeadline);

    /** Requests queued and not yet drained. */
    int64_t pending() const;

    /**
     * Run every queued request to resolution and deliver results:
     * simulate each distinct (workload, replica) pair across the
     * thread pool, then replay the serial fleet event loop
     * (arrivals, routing, dispatch, completions, crashes,
     * detections, failovers, hedges) over virtual time.
     *
     * @return completions grouped by stream (ascending stream id),
     *         each group in submission order.
     */
    std::vector<std::vector<FleetCompletion>> drain();

    /** Counters accumulated over every drain() so far. */
    const FleetStats &stats() const { return totals; }

    /** Per-replica usage, routing skew, failover/hedge counters,
     *  and cache-hit variance for the last drain(). */
    const FleetTelemetry &telemetry() const { return tele; }

  private:
    struct Pending
    {
        uint64_t id;
        int stream;
        const ModelWorkload *model;
        double arrival_s;
        double deadline_s;
    };

    ThreadPool *pool() const;

    /** Servable identity of a workload: (zoo model name, batch). */
    static std::pair<std::string, int>
    workloadKey(const ModelWorkload &mw);

    const std::vector<FleetReplica> fleet;
    Options opts;
    ReplicaRouter router;
    std::unique_ptr<ThreadPool> own_pool;
    std::map<int, std::vector<Pending>> queues;
    uint64_t next_id = 1;
    FleetStats totals;
    FleetTelemetry tele;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_FLEET_HH
