/**
 * @file
 * Pluggable admission policies for latency-aware serving.
 *
 * The virtual-clock event loop (serve/virtual_clock.hh) asks a
 * policy, every time a lane frees up, which of the requests that
 * have *arrived* by that virtual instant to dispatch next. Three
 * policies ship:
 *
 *  - RoundRobin: dispatch in admission order (round-robin across
 *    streams, submission order within a stream — exactly the order
 *    the pre-QoS StreamScheduler executed in, preserved bit for bit
 *    as the default);
 *  - EarliestDeadlineFirst: dispatch the arrived request whose
 *    deadline expires soonest (no-deadline requests sort last);
 *  - ShortestJobFirst: dispatch the arrived request with the
 *    smallest *estimated* service cycles. Estimates come from the
 *    scheduler's per-workload memo: the first completed simulation
 *    of a (model, batch) workload — itself served out of the shared
 *    PlanCache — pins the estimate every later request with the
 *    same workload is ordered by.
 *
 * Every policy is deterministic: ties break on admission index, so
 * a fixed trace produces one dispatch order at any thread count.
 *
 * Policies only reorder *timing*. Which simulations run, and what
 * they compute, is policy-independent — NetworkRuns are bitwise
 * identical under every policy (enforced by bench_latency_serving
 * and the serve tests).
 */

#ifndef S2TA_SERVE_QOS_HH
#define S2TA_SERVE_QOS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace s2ta {
namespace serve {

/** Deadline value meaning "no deadline" (sorts after any real one). */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * The timing-relevant view of one admitted request, in virtual
 * seconds. Indices into a vector of these are *admission indices*:
 * the deterministic round-robin admission order of the scheduler.
 */
struct TimedRequest
{
    /** Open-loop arrival time (0 for closed-loop submissions). */
    double arrival_s = 0.0;
    /** Completion deadline, or kNoDeadline. */
    double deadline_s = kNoDeadline;
    /** Exact simulated service cycles of the request's NetworkRun. */
    int64_t service_cycles = 0;
    /** Policy-visible service estimate (per-workload memo). */
    int64_t est_cycles = 0;
    /**
     * Extra occupancy beyond the service cycles, in virtual
     * seconds: failed retry attempts plus their backoff plus
     * injected stalls. Accrues on the dispatching lane (the request
     * is retried in place), so overload from faults is visible to
     * every request queued behind it.
     */
    double extra_delay_s = 0.0;
    int stream = 0;
    /** Scheduler-assigned request id. */
    uint64_t id = 0;
};

/** Why an admitted request was shed instead of dispatched. */
enum class ShedReason
{
    None = 0,
    /** Arrived while the global ready queue was at its cap. */
    QueueFull,
    /** Arrived while its stream's queue was at its cap. */
    StreamQueueFull,
    /** Could not meet its deadline even if dispatched immediately
     *  (judged on est_cycles at dispatch time). */
    DeadlineInfeasible,
};

/** Artifact name of a shed reason ("queue-full", ...). */
const char *shedReasonName(ShedReason reason);

/** Terminal state of one request's Completion. */
enum class Outcome
{
    /** Served; carries a NetworkRun bitwise identical to the
     *  fault-free run. */
    Ok = 0,
    /** Load-shed before dispatch; carries no run. */
    Shed,
    /** Every attempt hit an injected transient fault; carries the
     *  faulting layer as a typed error instead of a run. */
    Failed,
};

/** Artifact name of an outcome ("ok" | "shed" | "failed"). */
const char *outcomeName(Outcome outcome);

/**
 * Overload-control knobs for the virtual-clock event loop and the
 * scheduler's retry machinery. Defaults (all zero / false) mean
 * "admit everything, never retry" — the pre-overload behavior.
 */
struct OverloadConfig
{
    /** Arrived-but-undispatched requests admitted across all
     *  streams; later arrivals are shed. 0 = unbounded. */
    int64_t global_queue_cap = 0;
    /** Same cap, applied per stream. 0 = unbounded. */
    int64_t stream_queue_cap = 0;
    /** Shed requests whose deadline is infeasible at dispatch time
     *  instead of running them late. */
    bool shed_infeasible = false;
    /** Re-simulation attempts after a transient layer fault (the
     *  request fails with a typed error once exhausted). */
    int max_retries = 0;
    /** Base backoff before retry attempt a (doubles per attempt),
     *  in virtual seconds; accrues on the request's lane. */
    double retry_backoff_s = 0.0;

    bool
    anyShedding() const
    {
        return global_queue_cap > 0 || stream_queue_cap > 0 ||
               shed_infeasible;
    }
};

/**
 * Dispatch-order policy. pick() is called with the full admitted
 * request vector plus the admission indices of every request that
 * has arrived and not yet been dispatched (@p ready, ascending,
 * never empty) and returns one element of @p ready.
 *
 * Implementations must be stateless and deterministic (ties broken
 * on admission index), so one instance can serve any number of
 * concurrent schedulers.
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    /** CLI/artifact name ("rr", "edf", "sjf", ...). */
    virtual const char *name() const = 0;
    virtual size_t pick(const std::vector<TimedRequest> &all,
                        const std::vector<size_t> &ready) const = 0;
};

/** The built-in policies. */
enum class PolicyKind
{
    RoundRobin,
    EarliestDeadlineFirst,
    ShortestJobFirst,
};

/** Stateless shared instance of a built-in policy. */
const AdmissionPolicy &policyFor(PolicyKind kind);

/** CLI name of a built-in policy ("rr" | "edf" | "sjf"). */
const char *policyName(PolicyKind kind);

/** Accepted CLI policy names, for flag error messages. */
inline const char *
policyNameList()
{
    return "rr|edf|sjf";
}

/** Built-in policy by CLI name; fatal on unknown names, listing the
 *  accepted values. */
PolicyKind policyByName(const std::string &name);

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_QOS_HH
