/**
 * @file
 * Pluggable admission policies for latency-aware serving.
 *
 * The virtual-clock event loop (serve/virtual_clock.hh) asks a
 * policy, every time a lane frees up, which of the requests that
 * have *arrived* by that virtual instant to dispatch next. Three
 * policies ship:
 *
 *  - RoundRobin: dispatch in admission order (round-robin across
 *    streams, submission order within a stream — exactly the order
 *    the pre-QoS StreamScheduler executed in, preserved bit for bit
 *    as the default);
 *  - EarliestDeadlineFirst: dispatch the arrived request whose
 *    deadline expires soonest (no-deadline requests sort last);
 *  - ShortestJobFirst: dispatch the arrived request with the
 *    smallest *estimated* service cycles. Estimates come from the
 *    scheduler's per-workload memo: the first completed simulation
 *    of a (model, batch) workload — itself served out of the shared
 *    PlanCache — pins the estimate every later request with the
 *    same workload is ordered by.
 *
 * Every policy is deterministic: ties break on admission index, so
 * a fixed trace produces one dispatch order at any thread count.
 *
 * Policies only reorder *timing*. Which simulations run, and what
 * they compute, is policy-independent — NetworkRuns are bitwise
 * identical under every policy (enforced by bench_latency_serving
 * and the serve tests).
 */

#ifndef S2TA_SERVE_QOS_HH
#define S2TA_SERVE_QOS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace s2ta {
namespace serve {

/** Deadline value meaning "no deadline" (sorts after any real one). */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * The timing-relevant view of one admitted request, in virtual
 * seconds. Indices into a vector of these are *admission indices*:
 * the deterministic round-robin admission order of the scheduler.
 */
struct TimedRequest
{
    /** Open-loop arrival time (0 for closed-loop submissions). */
    double arrival_s = 0.0;
    /** Completion deadline, or kNoDeadline. */
    double deadline_s = kNoDeadline;
    /** Exact simulated service cycles of the request's NetworkRun. */
    int64_t service_cycles = 0;
    /** Policy-visible service estimate (per-workload memo). */
    int64_t est_cycles = 0;
    int stream = 0;
    /** Scheduler-assigned request id. */
    uint64_t id = 0;
};

/**
 * Dispatch-order policy. pick() is called with the full admitted
 * request vector plus the admission indices of every request that
 * has arrived and not yet been dispatched (@p ready, ascending,
 * never empty) and returns one element of @p ready.
 *
 * Implementations must be stateless and deterministic (ties broken
 * on admission index), so one instance can serve any number of
 * concurrent schedulers.
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    /** CLI/artifact name ("rr", "edf", "sjf", ...). */
    virtual const char *name() const = 0;
    virtual size_t pick(const std::vector<TimedRequest> &all,
                        const std::vector<size_t> &ready) const = 0;
};

/** The built-in policies. */
enum class PolicyKind
{
    RoundRobin,
    EarliestDeadlineFirst,
    ShortestJobFirst,
};

/** Stateless shared instance of a built-in policy. */
const AdmissionPolicy &policyFor(PolicyKind kind);

/** CLI name of a built-in policy ("rr" | "edf" | "sjf"). */
const char *policyName(PolicyKind kind);

/** Accepted CLI policy names, for flag error messages. */
inline const char *
policyNameList()
{
    return "rr|edf|sjf";
}

/** Built-in policy by CLI name; fatal on unknown names, listing the
 *  accepted values. */
PolicyKind policyByName(const std::string &name);

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_QOS_HH
