#include "serve/model_registry.hh"

#include "arch/plan_cache.hh"
#include "nn/model_zoo.hh"

namespace s2ta {
namespace serve {

ModelRegistry::ModelRegistry(uint64_t seed_, BatchMode mode_)
    : seed(seed_), mode(mode_)
{}

uint64_t
ModelRegistry::modelSeed(const std::string &model) const
{
    // Depends only on (registry seed, model name): request arrival
    // order can never change workload content.
    return PlanCache::combine(
        seed, PlanCache::hashBytes(model.data(), model.size()));
}

const ModelWorkload &
ModelRegistry::workload(const std::string &model, int batch)
{
    s2ta_assert(batch >= 1, "batch=%d", batch);
    const auto key = std::make_pair(model, batch);
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    if (batch > 1) {
        // Batch variants extend the batch-1 base, so the deployed
        // model (weights, bounds, profile) is shared across every
        // batch size. Distinct mode derives sample s from a seed
        // domain-separated from the base workload's generator
        // stream (the base seed already drew the weights).
        const ModelWorkload &base = workload(model, 1);
        ModelWorkload batched =
            mode == BatchMode::Replicate
                ? withBatch(base, batch)
                : withDistinctBatch(
                      base, batch,
                      PlanCache::combine(modelSeed(model),
                                         0x5A3B7Eull));
        it = cache.emplace(key, std::make_unique<ModelWorkload>(
                                    std::move(batched)))
                 .first;
        return *it->second;
    }

    Rng rng(modelSeed(model));
    it = cache.emplace(key,
                       std::make_unique<ModelWorkload>(
                           buildModelWorkload(modelByName(model),
                                              rng)))
             .first;
    return *it->second;
}

} // namespace serve
} // namespace s2ta
