#include "serve/model_registry.hh"

#include "arch/plan_cache.hh"
#include "nn/model_zoo.hh"

namespace s2ta {
namespace serve {

ModelRegistry::ModelRegistry(uint64_t seed_) : seed(seed_) {}

const ModelWorkload &
ModelRegistry::workload(const std::string &model, int batch)
{
    s2ta_assert(batch >= 1, "batch=%d", batch);
    const auto key = std::make_pair(model, batch);
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    if (batch > 1) {
        // Batch variants replicate the batch-1 base, so the
        // deployed model (weights, bounds, per-sample content) is
        // shared across every batch size.
        const ModelWorkload &base = workload(model, 1);
        it = cache.emplace(key, std::make_unique<ModelWorkload>(
                                    withBatch(base, batch)))
                 .first;
        return *it->second;
    }

    // The base seed depends only on (registry seed, model name):
    // request arrival order can never change workload content.
    const uint64_t model_seed = PlanCache::combine(
        seed, PlanCache::hashBytes(model.data(), model.size()));
    Rng rng(model_seed);
    it = cache.emplace(key,
                       std::make_unique<ModelWorkload>(
                           buildModelWorkload(modelByName(model),
                                              rng)))
             .first;
    return *it->second;
}

} // namespace serve
} // namespace s2ta
