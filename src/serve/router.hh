/**
 * @file
 * Health-aware request placement across fleet replicas.
 *
 * The fleet scheduler (serve/fleet.hh) asks the router, at every
 * routing instant (original arrival, failover re-dispatch, hedge
 * launch), which replica a request instance should queue on. Two
 * placement policies ship:
 *
 *  - ConsistentHash: a ring of virtual nodes keyed by replica
 *    index; the request's *workload identity* (zoo model name,
 *    batch) hashes onto the ring and walks clockwise to the first
 *    routable replica. Same workload -> same replica while the
 *    routable set is stable, which maximizes per-replica PlanCache
 *    affinity; when a replica leaves the routable set only the keys
 *    that hashed to it move (classic consistent-hashing locality).
 *  - LeastLoaded: the routable replica with the fewest outstanding
 *    request instances (queued + running), ties broken on the
 *    lowest replica index. Best throughput under heterogeneous
 *    service times; no cache affinity.
 *
 * Health awareness is the caller's routable set: replicas the
 * scheduler has *detected* as down, and replicas draining, are
 * excluded. A crashed-but-undetected replica is still routable —
 * that window is exactly what failure detection and failover
 * re-dispatch exist to cover.
 *
 * Everything is a pure function of (ring seed, workload identity,
 * routable set, loads), so placement decisions are identical at
 * every thread count and on every rerun.
 */

#ifndef S2TA_SERVE_ROUTER_HH
#define S2TA_SERVE_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace s2ta {
namespace serve {

/** The built-in placement policies. */
enum class PlacementKind
{
    ConsistentHash,
    LeastLoaded,
};

/** CLI name of a placement ("hash" | "least-loaded"). */
const char *placementName(PlacementKind kind);

/** Accepted CLI placement names, for flag error messages. */
inline const char *
placementNameList()
{
    return "hash|least-loaded";
}

/** Placement by CLI name; fatal on unknown names, listing the
 *  accepted values. */
PlacementKind placementByName(const std::string &name);

/** Stable 64-bit identity of a servable workload (zoo model name,
 *  batch) — the consistent-hash routing key, chosen so every
 *  request for one workload lands on one replica's warm cache. */
uint64_t workloadIdentity(const std::string &model, int batch);

class ReplicaRouter
{
  public:
    /**
     * @param replicas fleet size (ring positions are derived from
     *        replica indices, so a fleet's ring is a pure function
     *        of its size and @p seed).
     * @param kind placement policy.
     * @param seed ring seed (virtual-node positions).
     */
    ReplicaRouter(int replicas, PlacementKind kind,
                  uint64_t seed = 0xF1EE7);

    int replicas() const { return n_replicas; }
    PlacementKind kind() const { return placement; }

    /**
     * Pick a replica for one request instance.
     *
     * @param identity workload identity (consistent hash key;
     *        ignored by LeastLoaded).
     * @param routable per-replica flag: candidates are the replicas
     *        the caller believes healthy (not detected down, not
     *        draining). Size must be replicas().
     * @param outstanding per-replica queued + running instance
     *        counts (LeastLoaded order; ignored by ConsistentHash).
     * @param exclude replica index never returned (the crashed or
     *        hedged-against replica), or -1.
     * @return the chosen replica index, or -1 when no replica is
     *         routable (the caller strands the instance until a
     *         restart makes one routable again).
     */
    int route(uint64_t identity, const std::vector<bool> &routable,
              const std::vector<int64_t> &outstanding,
              int exclude = -1) const;

  private:
    /** One virtual node: ring position -> replica. */
    struct VNode
    {
        uint64_t pos;
        int replica;

        bool
        operator<(const VNode &o) const
        {
            // Total order: positions collide only across replicas
            // (same-replica nodes use distinct salts), so break
            // ties on the replica index for determinism.
            return pos != o.pos ? pos < o.pos
                                : replica < o.replica;
        }
    };

    /** Virtual nodes per replica: enough that removing one replica
     *  spreads its keyspace over the survivors roughly evenly. */
    static constexpr int kVNodes = 64;

    const int n_replicas;
    const PlacementKind placement;
    /** The ring, ascending by position. */
    std::vector<VNode> ring;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_ROUTER_HH
