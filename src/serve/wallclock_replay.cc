#include "serve/wallclock_replay.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace s2ta {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point epoch)
{
    return std::chrono::duration<double>(SteadyClock::now() - epoch)
        .count();
}

} // namespace

std::vector<WallclockCompletion>
replayWallclock(const Accelerator &acc,
                const std::vector<WallclockRequest> &trace,
                const WallclockReplayOptions &opts)
{
    s2ta_assert(opts.lanes >= 1, "lanes=%d", opts.lanes);
    const size_t n = trace.size();
    std::vector<WallclockCompletion> completions(n);
    for (size_t i = 0; i < n; ++i) {
        s2ta_assert(trace[i].model != nullptr,
                    "trace[%zu] has no workload", i);
        s2ta_assert(trace[i].arrival_s >= 0.0,
                    "trace[%zu] arrival %g < 0", i,
                    trace[i].arrival_s);
        completions[i].index = i;
        completions[i].stream = trace[i].stream;
        completions[i].arrival_s = trace[i].arrival_s;
        completions[i].deadline_s = trace[i].deadline_s;
    }
    if (n == 0)
        return completions;

    // The policy's view: admission index == trace index, wall
    // arrival/deadline in place of virtual ones, the caller's
    // service estimates. Policies are stateless over this exactly
    // as over the virtual scheduler's vector.
    std::vector<TimedRequest> timed(n);
    for (size_t i = 0; i < n; ++i) {
        timed[i].arrival_s = trace[i].arrival_s;
        timed[i].deadline_s = trace[i].deadline_s;
        timed[i].est_cycles = trace[i].est_cycles;
        timed[i].stream = trace[i].stream;
        timed[i].id = static_cast<uint64_t>(i);
    }

    // Feeder order: by scheduled arrival, admission index on ties.
    std::vector<size_t> by_arrival(n);
    std::iota(by_arrival.begin(), by_arrival.end(), size_t{0});
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [&](size_t a, size_t b) {
                         return trace[a].arrival_s <
                                trace[b].arrival_s;
                     });

    std::mutex mu;
    std::condition_variable cv;
    /** Published-but-undispatched admission indices, ascending (the
     *  shape AdmissionPolicy::pick is specified over). */
    std::vector<size_t> ready;
    size_t fed = 0;

    const SteadyClock::time_point epoch = SteadyClock::now();

    const auto feeder = [&] {
        for (const size_t i : by_arrival) {
            std::this_thread::sleep_until(
                epoch + std::chrono::duration_cast<
                            SteadyClock::duration>(
                            std::chrono::duration<double>(
                                trace[i].arrival_s)));
            const double now_s = secondsSince(epoch);
            // Only the trace hooks read the depth.
            [[maybe_unused]] size_t depth;
            {
                std::lock_guard<std::mutex> lk(mu);
                completions[i].enqueue_s = now_s;
                ready.insert(std::upper_bound(ready.begin(),
                                              ready.end(), i),
                             i);
                ++fed;
                depth = ready.size();
            }
            S2TA_TRACE_INSTANT("replay", "arrive", i);
            S2TA_TRACE_COUNTER("replay", "replay.ready", depth);
            cv.notify_one();
        }
        // Wake every lane parked on an empty queue: nothing more
        // is coming.
        cv.notify_all();
    };

    const auto worker = [&](int lane) {
        for (;;) {
            size_t i;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv.wait(lk, [&] {
                    return !ready.empty() || fed == n;
                });
                if (ready.empty())
                    return; // fed == n and nothing left to serve
                if (opts.policy != nullptr) {
                    i = opts.policy->pick(timed, ready);
                    const auto it = std::lower_bound(
                        ready.begin(), ready.end(), i);
                    s2ta_assert(it != ready.end() && *it == i,
                                "policy picked %zu not in ready",
                                i);
                    ready.erase(it);
                } else {
                    i = ready.front();
                    ready.erase(ready.begin());
                }
            }
            WallclockCompletion &c = completions[i];
            c.lane = lane;
            c.start_s = secondsSince(epoch);
            {
                S2TA_TRACE_SPAN_ID("replay", "request", i);
                c.run = acc.runNetwork(trace[i].model->layers,
                                       opts.run);
            }
            c.finish_s = secondsSince(epoch);
            S2TA_METRIC_INC("replay.requests");
            S2TA_METRIC_RECORD("replay.latency_us",
                               (c.finish_s - c.arrival_s) * 1e6);
            // A lane freeing up may unblock a sibling parked on the
            // empty-queue exit condition.
            cv.notify_all();
        }
    };

    // Index 0 is the feeder, indices 1..lanes are worker lanes.
    // ThreadPool hands an index to a thread only when that thread
    // is free, and the first claim is always index 0, so the feeder
    // starts first; a worker lane that is claimed late (or never,
    // if a thread oversleeps) is safe — the running lanes serve the
    // whole trace and the late lane exits immediately.
    ThreadPool pool(opts.lanes);
    pool.parallelFor(static_cast<int64_t>(opts.lanes) + 1,
                     [&](int64_t idx) {
                         if (idx == 0)
                             feeder();
                         else
                             worker(static_cast<int>(idx) - 1);
                     });

    for (size_t i = 0; i < n; ++i) {
        s2ta_assert(completions[i].lane >= 0,
                    "request %zu was never served", i);
        s2ta_assert(completions[i].start_s >=
                        completions[i].arrival_s,
                    "request %zu started %.9f before its arrival "
                    "%.9f",
                    i, completions[i].start_s,
                    completions[i].arrival_s);
    }
    return completions;
}

} // namespace serve
} // namespace s2ta
