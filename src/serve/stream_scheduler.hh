/**
 * @file
 * Serving-style streaming driver: many concurrent inference streams
 * through one Accelerator instance.
 *
 * A stream models one client connection issuing requests in order;
 * a request names a servable workload (any zoo model at any batch
 * size — see serve/model_registry.hh). The scheduler pulls
 * requests from the per-stream FIFO queues in deterministic
 * round-robin admission order, fans them out across a thread pool
 * (each lane simulates whole requests; the accelerator's own
 * layer/group fan-out runs inline inside that lane), and completes
 * each stream's requests strictly in submission order.
 *
 * Determinism contract: for a fixed submission sequence and fixed
 * options, drain() produces bitwise-identical NetworkRuns at every
 * thread count — requests are independent simulations, results are
 * written to per-request slots, and the per-stream reduction walks
 * admission order. Sharing a PlanCache across streams never changes
 * results either (plans are content-fingerprinted), it only makes
 * repeated (model, batch) workloads skip the lowering + encoding.
 */

#ifndef S2TA_SERVE_STREAM_SCHEDULER_HH
#define S2TA_SERVE_STREAM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "arch/accelerator.hh"
#include "workload/model_workloads.hh"

namespace s2ta {

class ThreadPool;

namespace serve {

/** One completed request, delivered in per-stream order. */
struct Completion
{
    /** Scheduler-assigned id, unique per StreamScheduler. */
    uint64_t id = 0;
    int stream = 0;
    /** Zoo name of the model the request ran. */
    std::string model;
    /** Samples the request carried. */
    int batch = 1;
    /** GEMM simulations the request issued (sum of layer groups). */
    int64_t gemms = 0;
    /** The whole-network simulation outcome. */
    NetworkRun run;
};

/** Aggregate counters over everything a scheduler has drained. */
struct ServeStats
{
    int64_t requests = 0;
    int64_t layers = 0;
    /** GEMM simulations issued (one per layer group per request). */
    int64_t gemms = 0;
    /** Dense-equivalent MACs simulated (batch included). */
    int64_t dense_macs = 0;
};

class StreamScheduler
{
  public:
    struct Options
    {
        /**
         * GEMM/network-level simulation knobs shared by every
         * request: engine, validation, compute_output, and — the
         * serving win — one PlanCache shared across streams and
         * models via run.plan_cache. Not owned.
         */
        NetworkRunOptions run;
        /**
         * Request-level fan-out lanes: 0 = one lane per hardware
         * thread (the process-wide pool), 1 = serial, N > 1 = a
         * dedicated pool of N lanes. Results are identical at any
         * setting.
         */
        int threads = 0;
        /**
         * Invoked once per completion during drain(), in
         * deterministic admission order (round-robin across
         * streams, submission order within a stream). Runs on the
         * draining thread after all simulation finished.
         */
        std::function<void(const Completion &)> on_complete;
    };

    /**
     * @param acc the one accelerator instance every stream shares;
     *        borrowed, must outlive the scheduler.
     */
    StreamScheduler(const Accelerator &acc, Options opts);
    ~StreamScheduler();

    StreamScheduler(const StreamScheduler &) = delete;
    StreamScheduler &operator=(const StreamScheduler &) = delete;

    /**
     * Append a request for @p mw to @p stream's queue. The workload
     * is borrowed and must stay alive until drain() returns.
     * @return the scheduler-assigned request id.
     * Not thread-safe (one driver thread submits and drains).
     */
    uint64_t submit(int stream, const ModelWorkload &mw);

    /** Requests queued and not yet drained. */
    int64_t pending() const;

    /**
     * Run every queued request to completion and deliver results.
     * Admission interleaves the streams round-robin (ascending
     * stream id, one request per stream per round); execution fans
     * out over the configured lanes; completions are reduced back
     * into per-stream submission order.
     *
     * @return completions grouped by stream (ascending stream id),
     *         each group in submission order.
     */
    std::vector<std::vector<Completion>> drain();

    /** Counters accumulated over every drain() so far. */
    const ServeStats &stats() const { return totals; }

    /** GEMM simulations one request for @p mw issues. */
    static int64_t gemmCount(const ModelWorkload &mw);

  private:
    struct Pending
    {
        uint64_t id;
        int stream;
        const ModelWorkload *model;
    };

    ThreadPool *pool() const;

    const Accelerator &acc;
    Options opts;
    /** Dedicated pool when opts.threads > 1. */
    std::unique_ptr<ThreadPool> own_pool;
    /** Per-stream FIFO queues, keyed by stream id. */
    std::map<int, std::vector<Pending>> queues;
    uint64_t next_id = 1;
    ServeStats totals;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_STREAM_SCHEDULER_HH
