/**
 * @file
 * Serving-style streaming driver: many concurrent inference streams
 * through one Accelerator instance, with virtual-clock QoS timing.
 *
 * A stream models one client connection issuing requests in order;
 * a request names a servable workload (any zoo model at any batch
 * size — see serve/model_registry.hh) plus, optionally, a virtual
 * arrival time and deadline. The scheduler pulls requests from the
 * per-stream FIFO queues in deterministic round-robin admission
 * order, fans the *simulations* out across a thread pool (each lane
 * simulates whole requests; the accelerator's own layer/group
 * fan-out runs inline inside that lane), assigns every request a
 * virtual start/finish instant by replaying the configured
 * AdmissionPolicy over the virtual lanes (serve/virtual_clock.hh),
 * and completes each stream's requests strictly in submission
 * order.
 *
 * Determinism contract: for a fixed submission sequence and fixed
 * options, drain() produces bitwise-identical NetworkRuns *and*
 * virtual timings at every thread count — requests are independent
 * simulations, results are written to per-request slots, the
 * virtual clock runs on the draining thread over deterministic
 * inputs, and the per-stream reduction walks admission order.
 * Sharing a PlanCache across streams never changes results either
 * (plans are content-fingerprinted), it only makes repeated
 * (model, batch) workloads skip the lowering + encoding.
 *
 * Policy contract: the admission policy reorders *dispatch timing*
 * only. Which simulations run, what they compute, the per-stream
 * completion grouping, and the on_complete order are all
 * policy-independent — every policy yields bitwise-identical
 * NetworkRuns (enforced by bench_latency_serving and the serve
 * tests).
 */

#ifndef S2TA_SERVE_STREAM_SCHEDULER_HH
#define S2TA_SERVE_STREAM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "arch/accelerator.hh"
#include "serve/telemetry.hh"
#include "serve/virtual_clock.hh"
#include "workload/model_workloads.hh"

namespace s2ta {

class Backend;
class ThreadPool;

namespace serve {

/** One completed request, delivered in per-stream order. */
struct Completion
{
    /** Scheduler-assigned id, unique per StreamScheduler. */
    uint64_t id = 0;
    int stream = 0;
    /** Zoo name of the model the request ran. */
    std::string model;
    /** Samples the request carried. */
    int batch = 1;
    /** GEMM simulations the request issued (sum of layer groups). */
    int64_t gemms = 0;

    // Virtual-clock timing (seconds of simulated time; see
    // serve/virtual_clock.hh). With default submissions (arrival 0,
    // no deadline) these are still filled — a closed-loop trace is
    // just an open-loop one where everything arrives at t = 0.
    double arrival_s = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;
    /** Deadline the request carried, or kNoDeadline. */
    double deadline_s = kNoDeadline;
    /** Virtual lane the request was dispatched on; -1 when shed. */
    int lane = 0;
    /** Simulated cycles behind finish - start (0 for shed or
     *  failed requests). */
    int64_t service_cycles = 0;

    // Robustness outcome. Ok completions carry a run bitwise
    // identical to the fault-free baseline; Shed and Failed carry
    // an empty run — a fault or overload can delay or drop a
    // result, never corrupt one.
    Outcome outcome = Outcome::Ok;
    /** Why the request was shed (Shed outcome only). */
    ShedReason shed_reason = ShedReason::None;
    /** Simulation attempts consumed (retries = attempts - 1). */
    int attempts = 1;
    /** Typed error for Failed: the layer whose injected fault
     *  aborted the final attempt; -1 otherwise. */
    int fault_layer = -1;
    /** Injected layer faults observed across all attempts. */
    int64_t fault_count = 0;
    /** Injected stall cycles (virtual timing only, never results). */
    int64_t stall_cycles = 0;
    /** Virtual seconds of failed attempts + backoff + stalls +
     *  visible link transfer, accrued on the request's lane. */
    double retry_delay_s = 0.0;
    /** Modeled backend link-transfer cycles of the served attempt
     *  (0 without a device backend). The share not hidden by the
     *  queue's double buffering is folded into retry_delay_s. */
    int64_t transfer_cycles = 0;

    bool ok() const { return outcome == Outcome::Ok; }
    bool shed() const { return outcome == Outcome::Shed; }
    bool failed() const { return outcome == Outcome::Failed; }

    /** The whole-network simulation outcome (Ok only). */
    NetworkRun run;

    /** This completion's timing, ready for LatencyTelemetry. */
    LatencySample
    sample() const
    {
        return LatencySample{stream, arrival_s, start_s, finish_s,
                             deadline_s};
    }

    bool
    missedDeadline() const
    {
        return sample().missedDeadline();
    }
};

/** Aggregate counters over everything a scheduler has drained. */
struct ServeStats
{
    int64_t requests = 0;
    /** Requests that completed Ok. Layer/gemm/mac totals below
     *  count served work only (shed and failed requests deliver no
     *  result). */
    int64_t completed = 0;
    int64_t layers = 0;
    /** GEMM simulations issued (one per layer group per request). */
    int64_t gemms = 0;
    /** Dense-equivalent MACs simulated (batch included). */
    int64_t dense_macs = 0;

    // Overload + fault accounting. Fault counters cover every
    // simulated attempt — including attempts of requests that were
    // later shed in virtual time — so they reconcile exactly with
    // the injector's per-site totals.
    int64_t shed_queue_full = 0;
    int64_t shed_stream_full = 0;
    int64_t shed_infeasible = 0;
    /** Requests whose retry budget was exhausted. Counted even
     *  when the request was *also* shed in virtual time (its
     *  Completion then reports Shed — it was never dispatched), so
     *  faulted_attempts == retries + failed holds exactly. */
    int64_t failed = 0;
    /** Re-simulation attempts after a transient fault. */
    int64_t retries = 0;
    /** Attempts that observed at least one injected layer fault
     *  (each such attempt either retried or terminally failed its
     *  request, so this equals retries + failed). */
    int64_t faulted_attempts = 0;
    /** Injected layer faults observed (>= faulted_attempts). */
    int64_t layer_faults = 0;
    /** Injected stalls (timing-only). */
    int64_t stall_events = 0;
    int64_t stall_cycles = 0;
    /** Modeled backend link-transfer cycles across simulated
     *  requests (timing-only, like stalls). */
    int64_t transfer_cycles = 0;
    /** High-water arrived-but-undispatched virtual queue depth. */
    int64_t max_queue_depth = 0;

    int64_t
    shedTotal() const
    {
        return shed_queue_full + shed_stream_full + shed_infeasible;
    }
};

class StreamScheduler
{
  public:
    struct Options
    {
        /**
         * GEMM/network-level simulation knobs shared by every
         * request: engine, validation, compute_output, and — the
         * serving win — one PlanCache shared across streams and
         * models via run.plan_cache. Not owned.
         */
        NetworkRunOptions run;
        /**
         * Optional async device backend (arch/backend.hh) requests
         * are driven through instead of direct Accelerator calls;
         * borrowed, must outlive the scheduler. Results stay
         * bitwise identical to the direct path — the backend
         * contributes *timing*: its bounded queue depth decides how
         * much modeled transfer the double buffering hides, and the
         * visible remainder lands in each request's lane delay.
         * The backend's device config should match `acc`'s for the
         * cycle estimates to stay meaningful.
         */
        Backend *backend = nullptr;
        /**
         * Request-level fan-out lanes for the *simulation*: 0 = one
         * lane per hardware thread (the process-wide pool), 1 =
         * serial, N > 1 = a dedicated pool of N lanes. Results and
         * virtual timings are identical at any setting.
         */
        int threads = 0;
        /**
         * Virtual deployment the QoS timing is computed against:
         * accelerator lanes and clock. Independent of `threads`
         * (which only fans out the simulation work).
         */
        VirtualClockConfig clock;
        /**
         * Dispatch-order policy for the virtual clock; borrowed,
         * nullptr = round-robin (admission order, the pre-QoS
         * behavior, preserved bit for bit). Policies never change
         * simulation results, only start/finish instants.
         */
        const AdmissionPolicy *policy = nullptr;
        /**
         * Overload controls: queue caps and infeasible-deadline
         * shedding for the virtual clock, retry budget + backoff
         * for transiently faulted requests (run.fault must be set
         * for faults to exist at all). Defaults preserve the
         * pre-overload behavior exactly.
         */
        OverloadConfig overload;
        /**
         * Invoked once per completion during drain(), in
         * deterministic admission order (round-robin across
         * streams, submission order within a stream) — regardless
         * of the admission policy, which only affects the timing
         * fields. Runs on the draining thread after all simulation
         * and timing assignment finished.
         */
        std::function<void(const Completion &)> on_complete;
    };

    /**
     * @param acc the one accelerator instance every stream shares;
     *        borrowed, must outlive the scheduler.
     */
    StreamScheduler(const Accelerator &acc, Options opts);
    ~StreamScheduler();

    StreamScheduler(const StreamScheduler &) = delete;
    StreamScheduler &operator=(const StreamScheduler &) = delete;

    /**
     * Append a request for @p mw to @p stream's queue. The workload
     * is borrowed and must stay alive until drain() returns.
     * @param arrival_s virtual arrival instant (open-loop traces
     *        come from poissonArrivals; 0 = closed-loop).
     * @param deadline_s virtual completion deadline, or
     *        kNoDeadline.
     * @return the scheduler-assigned request id.
     * Not thread-safe (one driver thread submits and drains).
     */
    uint64_t submit(int stream, const ModelWorkload &mw,
                    double arrival_s = 0.0,
                    double deadline_s = kNoDeadline);

    /** Requests queued and not yet drained. */
    int64_t pending() const;

    /**
     * Run every queued request to completion and deliver results.
     * Admission interleaves the streams round-robin (ascending
     * stream id, one request per stream per round); simulation fans
     * out over the configured lanes; the virtual clock assigns
     * start/finish instants per the configured policy; completions
     * are reduced back into per-stream submission order.
     *
     * @return completions grouped by stream (ascending stream id),
     *         each group in submission order.
     */
    std::vector<std::vector<Completion>> drain();

    /** Counters accumulated over every drain() so far. */
    const ServeStats &stats() const { return totals; }

    /**
     * Cached service-cycle estimate for @p mw's servable identity
     * (zoo model name, batch): the cycle total of the first
     * simulated request carrying it (pinned for the scheduler's
     * lifetime — the estimate SJF orders by), or 0 before any
     * request for it drained.
     */
    int64_t estimatedCycles(const ModelWorkload &mw) const;

    /** GEMM simulations one request for @p mw issues. */
    static int64_t gemmCount(const ModelWorkload &mw);

  private:
    struct Pending
    {
        uint64_t id;
        int stream;
        const ModelWorkload *model;
        double arrival_s;
        double deadline_s;
    };

    ThreadPool *pool() const;

    const Accelerator &acc;
    Options opts;
    /** Dedicated pool when opts.threads > 1. */
    std::unique_ptr<ThreadPool> own_pool;
    /** Per-stream FIFO queues, keyed by stream id. */
    std::map<int, std::vector<Pending>> queues;
    /** Servable identity of a workload: (zoo model name, batch). */
    static std::pair<std::string, int>
    workloadKey(const ModelWorkload &mw);

    /**
     * Per-workload service-cycle estimates, pinned by the first
     * simulated request of each workload (in admission order, so
     * deterministic). Keyed by the servable identity — not the
     * workload's address, which submit() only requires to stay
     * valid until drain() returns.
     */
    std::map<std::pair<std::string, int>, int64_t> cycle_estimates;
    uint64_t next_id = 1;
    ServeStats totals;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_STREAM_SCHEDULER_HH
