#include "serve/telemetry.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace s2ta {
namespace serve {

void
RobustnessTelemetry::recordOutcome(Outcome outcome,
                                   ShedReason reason, int attempts,
                                   int64_t fault_count,
                                   int64_t stall_cycles)
{
    s2ta_assert(attempts >= 1, "attempts %d < 1", attempts);
    total_ += 1;
    retries_ += attempts - 1;
    layer_faults_ += fault_count;
    stall_cycles_ += stall_cycles;
    switch (outcome) {
      case Outcome::Ok:
        completed_ += 1;
        break;
      case Outcome::Failed:
        failed_ += 1;
        break;
      case Outcome::Shed:
        switch (reason) {
          case ShedReason::QueueFull:
            shed_queue_full_ += 1;
            break;
          case ShedReason::StreamQueueFull:
            shed_stream_full_ += 1;
            break;
          case ShedReason::DeadlineInfeasible:
            shed_infeasible_ += 1;
            break;
          case ShedReason::None:
            s2ta_panic("Shed outcome with ShedReason::None");
        }
        break;
    }
}

void
RobustnessTelemetry::clear()
{
    *this = RobustnessTelemetry{};
}

double
FleetTelemetry::routingSkew() const
{
    if (usage_.empty())
        return 0.0;
    int64_t total = 0, peak = 0;
    for (const ReplicaUsage &u : usage_) {
        total += u.routed;
        peak = std::max(peak, u.routed);
    }
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(usage_.size());
    return static_cast<double>(peak) / mean;
}

double
FleetTelemetry::cacheHitVariance() const
{
    if (usage_.empty())
        return 0.0;
    double mean = 0.0;
    for (const ReplicaUsage &u : usage_)
        mean += u.hitRate();
    mean /= static_cast<double>(usage_.size());
    double var = 0.0;
    for (const ReplicaUsage &u : usage_) {
        const double d = u.hitRate() - mean;
        var += d * d;
    }
    return var / static_cast<double>(usage_.size());
}

void
LatencyTelemetry::record(const LatencySample &s)
{
    const double latency = s.latency();
    const double queue = s.queueing();
    s2ta_assert(latency >= 0.0, "negative latency %g", latency);
    s2ta_assert(queue >= 0.0, "negative queueing delay %g", queue);

    latencies_s.push_back(latency);
    bucket_counts[bucketOf(latency)] += 1;
    total += 1;
    latency_sum_s += latency;
    latency_max_s = std::max(latency_max_s, latency);

    StreamDelay &sd = streams[s.stream];
    sd.requests += 1;
    sd.queue_sum_s += queue;
    sd.queue_max_s = std::max(sd.queue_max_s, queue);

    if (s.hasDeadline()) {
        with_deadline += 1;
        if (s.missedDeadline()) {
            misses += 1;
            sd.deadline_misses += 1;
        }
    }
}

namespace {

/**
 * Nearest rank over a non-empty ascending sample list: ceil(q*n),
 * 1-based. A single sample is every quantile of its stream. The
 * 0-sample case is the *caller's* decision — quantile() panics,
 * quantileIfAny() returns nullopt, quantiles() reports zeros —
 * rather than relying on rank clamping to paper over it here.
 */
double
rankOf(const std::vector<double> &sorted, double q)
{
    const size_t n = sorted.size();
    s2ta_assert(n > 0, "rankOf on an empty sample list");
    if (n == 1)
        return sorted[0];
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::min(std::max<size_t>(rank, 1), n);
    return sorted[rank - 1];
}

} // anonymous namespace

double
LatencyTelemetry::quantile(double q) const
{
    s2ta_assert(q > 0.0 && q <= 1.0, "quantile %g out of (0, 1]",
                q);
    s2ta_assert(total > 0,
                "quantile(%g) on empty telemetry — a 0.0 here "
                "would report a perfect latency; use "
                "quantileIfAny() if emptiness is expected",
                q);
    std::vector<double> sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    return rankOf(sorted, q);
}

std::optional<double>
LatencyTelemetry::quantileIfAny(double q) const
{
    s2ta_assert(q > 0.0 && q <= 1.0, "quantile %g out of (0, 1]",
                q);
    if (total == 0)
        return std::nullopt;
    return quantile(q);
}

LatencyQuantiles
LatencyTelemetry::quantiles() const
{
    if (total == 0)
        return {};
    std::vector<double> sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    return {rankOf(sorted, 0.50), rankOf(sorted, 0.95),
            rankOf(sorted, 0.99)};
}

size_t
LatencyTelemetry::bucketOf(double latency_s)
{
    const double us = latency_s * 1e6;
    if (us < 2.0)
        return 0;
    const size_t k =
        static_cast<size_t>(std::floor(std::log2(us)));
    return std::min(k, kBuckets - 1);
}

std::vector<HistogramBin>
LatencyTelemetry::histogram() const
{
    std::vector<HistogramBin> bins;
    for (size_t k = 0; k < kBuckets; ++k) {
        if (bucket_counts[k] == 0)
            continue;
        HistogramBin bin;
        bin.lo_s = k == 0 ? 0.0 : std::ldexp(1e-6, static_cast<int>(k));
        bin.hi_s = std::ldexp(1e-6, static_cast<int>(k) + 1);
        bin.count = bucket_counts[k];
        bins.push_back(bin);
    }
    return bins;
}

void
LatencyTelemetry::clear()
{
    latencies_s.clear();
    std::fill(std::begin(bucket_counts), std::end(bucket_counts),
              0);
    streams.clear();
    total = 0;
    with_deadline = 0;
    misses = 0;
    latency_sum_s = 0.0;
    latency_max_s = 0.0;
}

} // namespace serve
} // namespace s2ta
