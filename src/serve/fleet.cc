#include "serve/fleet.hh"

#include <algorithm>
#include <queue>

#include "arch/backend.hh"
#include "arch/plan_cache.hh"
#include "base/fault_injection.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace s2ta {
namespace serve {

const char *
replicaEventKindName(ReplicaEvent::Kind kind)
{
    switch (kind) {
      case ReplicaEvent::Kind::Crash: return "crash";
      case ReplicaEvent::Kind::Restart: return "restart";
      case ReplicaEvent::Kind::BrownoutStart: return "brownout-start";
      case ReplicaEvent::Kind::BrownoutEnd: return "brownout-end";
      case ReplicaEvent::Kind::DrainStart: return "drain-start";
      case ReplicaEvent::Kind::DrainEnd: return "drain-end";
    }
    s2ta_panic("unknown replica event kind %d", int(kind));
}

std::vector<ReplicaEvent>
deriveReplicaSchedule(const FaultInjector &fi, int replicas,
                      double horizon_s, double slot_s,
                      double brownout_slowdown)
{
    s2ta_assert(replicas >= 1, "replicas=%d", replicas);
    s2ta_assert(slot_s > 0.0, "slot_s=%g", slot_s);
    s2ta_assert(brownout_slowdown >= 1.0, "brownout_slowdown=%g",
                brownout_slowdown);
    std::vector<ReplicaEvent> schedule;
    std::vector<bool> up(static_cast<size_t>(replicas), true);
    for (uint64_t slot = 0;
         static_cast<double>(slot) * slot_s < horizon_s; ++slot) {
        const double t = static_cast<double>(slot) * slot_s;
        for (int r = 0; r < replicas; ++r) {
            const uint64_t id = FaultInjector::combineId(
                static_cast<uint64_t>(r), slot);
            if (up[static_cast<size_t>(r)]) {
                if (fi.shouldFail(FaultSite::ReplicaCrash, id)) {
                    schedule.push_back(
                        {r, ReplicaEvent::Kind::Crash, t, 1.0});
                    up[static_cast<size_t>(r)] = false;
                    continue;
                }
                if (fi.shouldFail(FaultSite::ReplicaStall, id)) {
                    schedule.push_back(
                        {r, ReplicaEvent::Kind::BrownoutStart, t,
                         brownout_slowdown});
                    schedule.push_back(
                        {r, ReplicaEvent::Kind::BrownoutEnd,
                         t + slot_s, 1.0});
                }
            } else if (fi.shouldFail(FaultSite::ReplicaRestart,
                                     id)) {
                schedule.push_back(
                    {r, ReplicaEvent::Kind::Restart, t, 1.0});
                up[static_cast<size_t>(r)] = true;
            }
        }
    }
    return schedule;
}

FleetScheduler::FleetScheduler(std::vector<FleetReplica> replicas,
                               Options opts_)
    : fleet(std::move(replicas)), opts(std::move(opts_)),
      router(static_cast<int>(fleet.size()), opts.placement,
             opts.ring_seed),
      tele(static_cast<int>(fleet.size()))
{
    s2ta_assert(!fleet.empty(), "fleet is empty");
    for (const FleetReplica &rep : fleet)
        s2ta_assert(rep.accel, "replica without an accelerator");
    s2ta_assert(opts.threads >= 0, "threads=%d", opts.threads);
    s2ta_assert(opts.clock.lanes >= 1, "clock.lanes=%d",
                opts.clock.lanes);
    s2ta_assert(opts.clock.clock_ghz > 0.0, "clock_ghz=%g",
                opts.clock.clock_ghz);
    s2ta_assert(opts.max_failovers >= 0, "max_failovers=%d",
                opts.max_failovers);
    s2ta_assert(opts.detect_delay_s >= 0.0, "detect_delay_s=%g",
                opts.detect_delay_s);
    s2ta_assert(opts.hedge_delay_s >= 0.0, "hedge_delay_s=%g",
                opts.hedge_delay_s);
    for (const ReplicaEvent &ev : opts.schedule) {
        s2ta_assert(ev.replica >= 0 &&
                        ev.replica < this->replicas(),
                    "scheduled event for replica %d of %d",
                    ev.replica, this->replicas());
        s2ta_assert(ev.at_s >= 0.0, "scheduled event at %g s",
                    ev.at_s);
    }
    if (opts.threads > 1)
        own_pool = std::make_unique<ThreadPool>(opts.threads - 1);
}

FleetScheduler::~FleetScheduler() = default;

ThreadPool *
FleetScheduler::pool() const
{
    if (opts.threads == 1)
        return nullptr;
    return own_pool ? own_pool.get() : &ThreadPool::global();
}

std::pair<std::string, int>
FleetScheduler::workloadKey(const ModelWorkload &mw)
{
    return {mw.spec.name,
            mw.layers.empty() ? 1 : mw.layers.front().batch};
}

uint64_t
FleetScheduler::submit(int stream, const ModelWorkload &mw,
                       double arrival_s, double deadline_s)
{
    s2ta_assert(stream >= 0, "stream=%d", stream);
    s2ta_assert(arrival_s >= 0.0, "arrival_s=%g", arrival_s);
    const uint64_t id = next_id++;
    queues[stream].push_back(
        Pending{id, stream, &mw, arrival_s, deadline_s});
    return id;
}

int64_t
FleetScheduler::pending() const
{
    int64_t n = 0;
    for (const auto &[stream, q] : queues)
        n += static_cast<int64_t>(q.size());
    return n;
}

namespace {

/** One dispatch attempt lineage of one request on one replica. */
struct Instance
{
    enum class St
    {
        /** Waiting in its replica's queue. */
        Queued,
        /** On a lane; a completion event is pending. */
        Running,
        /** Running on a replica that crashed — the scheduler has
         *  not noticed yet (the completion will never be believed). */
        LostRunning,
        /** No routable replica existed; waiting for a restart. */
        Stranded,
        /** Ran to its virtual finish (success or compute failure). */
        Finished,
        /** Removed before dispatch (hedge loser, infeasible shed). */
        Cancelled,
        /** Killed by a detected replica crash. */
        Lost,
    };

    size_t req = 0;
    int seq = 0;
    int replica = -1;
    St st = St::Queued;
    bool is_hedge = false;
    double start_s = 0.0;
    double finish_s = 0.0;
    int lane = -1;
    /** Filled at dispatch (attempts == 0 means never dispatched). */
    int attempts = 0;
    int faulted_attempts = 0;
    int fault_layer = -1;
    int64_t fault_count = 0;
    int64_t stall_events = 0;
    int64_t stall_cycles = 0;
    double extra_delay_s = 0.0;
    bool compute_failed = false;
};

/** Event-loop state of one admitted request. */
struct ReqState
{
    size_t widx = 0;
    uint64_t identity = 0;
    /** Instances in {Queued, Running, LostRunning, Stranded}. */
    int live = 0;
    int next_seq = 0;
    int failovers = 0;
    bool hedged = false;
    bool resolved = false;
    Outcome outcome = Outcome::Ok;
    ShedReason reason = ShedReason::None;
    /** Winning instance (Ok), or the last compute-failed one. */
    int final_inst = -1;
    double resolve_s = 0.0;
    bool hedge_won = false;
    bool lost_to_crash = false;
    std::vector<int> members;
};

/** Event-loop state of one replica. */
struct Rep
{
    bool up = true;
    bool detected_down = false;
    bool draining = false;
    double slowdown = 1.0;
    int crash_epoch = 0;
    std::vector<double> lane_free;
    /** Queued instance indices, enqueue order. */
    std::vector<int> queue;
    /** Queued + running instances (the router's load signal). */
    int64_t outstanding = 0;
};

/** One discrete event. Priority within an instant: completions
 *  land before lifecycle transitions, which land before
 *  detections, arrivals, and hedge timers — so a request finishing
 *  exactly when its replica crashes still completes, and a restart
 *  at the detection instant still recovers the lost work first. */
struct Ev
{
    double t = 0.0;
    int prio = 0;
    uint64_t seq = 0;
    int a = 0;
    int b = 0;
};

struct EvAfter
{
    bool
    operator()(const Ev &l, const Ev &r) const
    {
        if (l.t != r.t)
            return l.t > r.t;
        if (l.prio != r.prio)
            return l.prio > r.prio;
        return l.seq > r.seq;
    }
};

constexpr int kEvCompletion = 0;
constexpr int kEvLifecycle = 1;
constexpr int kEvDetection = 2;
constexpr int kEvArrival = 3;
constexpr int kEvHedge = 4;

} // anonymous namespace

std::vector<std::vector<FleetCompletion>>
FleetScheduler::drain()
{
    const int R = replicas();
    const size_t nR = static_cast<size_t>(R);

    // Admission: identical to StreamScheduler — round-robin across
    // streams in ascending stream id, one request per stream per
    // round; deterministic in the submission sequence alone.
    std::vector<Pending> admitted;
    admitted.reserve(static_cast<size_t>(pending()));
    for (size_t round = 0; true; ++round) {
        bool any = false;
        for (const auto &[stream, q] : queues) {
            if (round < q.size()) {
                admitted.push_back(q[round]);
                any = true;
            }
        }
        if (!any)
            break;
    }

    // Distinct workloads, first-seen in admission order. Requests
    // carrying the same (model, batch) are the same simulation, so
    // phase 1 simulates (workload x replica) pairs, not requests.
    std::map<std::pair<std::string, int>, size_t> widx_of;
    std::vector<const ModelWorkload *> workloads;
    std::vector<size_t> req_widx(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const auto key = workloadKey(*admitted[i].model);
        auto it = widx_of.find(key);
        if (it == widx_of.end()) {
            it = widx_of.emplace(key, workloads.size()).first;
            workloads.push_back(admitted[i].model);
        }
        req_widx[i] = it->second;
    }
    const size_t W = workloads.size();

    // Phase 1 — simulate every (workload, replica) pair across the
    // thread pool, each against its replica's own accelerator and
    // PlanCache (typically all attached to one shared PlanStore, so
    // the first replica to encode a plan warms every other). Clean
    // runs: per-attempt fault sites are rolled in phase 2 without
    // re-simulating (a surviving attempt's result IS the clean
    // result; a faulted attempt aborts before simulating), so the
    // pair results are fault-, policy-, and routing-independent —
    // and bitwise identical to a single-accelerator run of the same
    // workload on the same config.
    std::vector<NetworkRun> pair_runs(W * nR);
    // Per-pair modeled link cycles when the replica is driven
    // through a device backend: `raw` is the full transfer (for
    // telemetry), `visible` the share the backend's queue depth
    // could not hide behind service — which joins the pair's
    // service cycles below, so placement estimates, dispatch and
    // completions all price the link. Both are zero on the direct
    // path, preserving pre-backend timing bit for bit.
    std::vector<int64_t> pair_transfer_raw(W * nR, 0);
    std::vector<int64_t> pair_transfer_visible(W * nR, 0);
    const auto sim_one = [&](int64_t p) {
        const size_t w = static_cast<size_t>(p) / nR;
        const size_t r = static_cast<size_t>(p) % nR;
        NetworkRunOptions ro = opts.run;
        ro.fault = nullptr;
        ro.fault_id = 0;
        ro.plan_cache = fleet[r].cache;
        if (fleet[r].backend != nullptr) {
            BackendNetworkRun br =
                fleet[r].backend->runNetworkTimed(
                    workloads[w]->layers, ro);
            const int64_t cycles = br.run.total.cycles;
            pair_runs[static_cast<size_t>(p)] = std::move(br.run);
            pair_transfer_raw[static_cast<size_t>(p)] =
                br.transfer_cycles;
            pair_transfer_visible[static_cast<size_t>(p)] =
                fleet[r].backend->queueConfig().queue_depth > 1
                    ? std::max<int64_t>(
                          0, br.transfer_cycles - cycles)
                    : br.transfer_cycles;
        } else {
            pair_runs[static_cast<size_t>(p)] =
                fleet[r].accel->runNetwork(workloads[w]->layers,
                                           ro);
        }
    };
    ThreadPool *tp = pool();
    if (tp && W * nR > 1) {
        tp->parallelFor(static_cast<int64_t>(W * nR), sim_one);
    } else {
        for (size_t p = 0; p < W * nR; ++p)
            sim_one(static_cast<int64_t>(p));
    }
    const auto pair_cycles = [&](size_t w, size_t r) {
        return pair_runs[w * nR + r].total.cycles +
               pair_transfer_visible[w * nR + r];
    };

    // Phase 2 — the serial fleet event loop over virtual time.
    tele = FleetTelemetry(R);
    std::vector<ReqState> rstate(admitted.size());
    std::vector<Instance> insts;
    std::vector<Rep> reps(nR);
    for (Rep &rep : reps)
        rep.lane_free.assign(
            static_cast<size_t>(opts.clock.lanes), 0.0);
    std::vector<int> stranded;
    int64_t global_queued = 0;
    std::map<int, int64_t> stream_queued;
    const AdmissionPolicy &policy =
        opts.policy ? *opts.policy
                    : policyFor(PolicyKind::RoundRobin);
    const bool inject = opts.run.fault != nullptr;
    const int max_attempts =
        1 + std::max(0, opts.overload.max_retries);

    // The policy's view of the admitted requests. est_cycles pins
    // at the primary placement's service cycles (SJF ordering and
    // the infeasibility judgment both want one stable estimate per
    // request, even on a heterogeneous fleet).
    std::vector<TimedRequest> timed(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        timed[i].arrival_s = admitted[i].arrival_s;
        timed[i].deadline_s = admitted[i].deadline_s;
        timed[i].stream = admitted[i].stream;
        timed[i].id = admitted[i].id;
        rstate[i].widx = req_widx[i];
        rstate[i].identity = workloadIdentity(
            workloads[req_widx[i]]->spec.name,
            workloads[req_widx[i]]->layers.empty()
                ? 1
                : workloads[req_widx[i]]->layers.front().batch);
    }

    std::priority_queue<Ev, std::vector<Ev>, EvAfter> pq;
    uint64_t evseq = 0;
    for (size_t i = 0; i < admitted.size(); ++i)
        pq.push(Ev{admitted[i].arrival_s, kEvArrival, evseq++,
                   static_cast<int>(i), 0});
    for (size_t k = 0; k < opts.schedule.size(); ++k)
        pq.push(Ev{opts.schedule[k].at_s, kEvLifecycle, evseq++,
                   static_cast<int>(k), 0});

    const auto routableSet = [&]() {
        std::vector<bool> routable(nR);
        for (size_t r = 0; r < nR; ++r)
            routable[r] =
                !reps[r].detected_down && !reps[r].draining;
        return routable;
    };
    const auto outstandingVec = [&]() {
        std::vector<int64_t> out(nR);
        for (size_t r = 0; r < nR; ++r)
            out[r] = reps[r].outstanding;
        return out;
    };

    const auto resolve = [&](size_t i, Outcome outcome,
                             ShedReason reason, int final_inst,
                             double t) {
        ReqState &rq = rstate[i];
        rq.resolved = true;
        rq.outcome = outcome;
        rq.reason = reason;
        rq.final_inst = final_inst;
        rq.resolve_s = t;
    };

    /** Detach a queued instance from its replica's queue and the
     *  cap accounting (dispatch, cancellation, or crash loss). */
    const auto unqueue = [&](int ii) {
        Instance &in = insts[static_cast<size_t>(ii)];
        std::vector<int> &q =
            reps[static_cast<size_t>(in.replica)].queue;
        q.erase(std::find(q.begin(), q.end(), ii));
        global_queued -= 1;
        stream_queued[admitted[in.req].stream] -= 1;
    };

    /** Create an instance of request @p i on replica @p r (or
     *  stranded when r < 0) at instant @p t. */
    const auto newInstance = [&](size_t i, int r, double t,
                                 bool is_hedge) {
        ReqState &rq = rstate[i];
        Instance in;
        in.req = i;
        in.seq = rq.next_seq++;
        in.replica = r;
        in.is_hedge = is_hedge;
        const int ii = static_cast<int>(insts.size());
        rq.members.push_back(ii);
        rq.live += 1;
        totals.instances += 1;
        if (r < 0) {
            in.st = Instance::St::Stranded;
            insts.push_back(in);
            stranded.push_back(ii);
            return ii;
        }
        in.st = Instance::St::Queued;
        insts.push_back(in);
        Rep &rep = reps[static_cast<size_t>(r)];
        rep.queue.push_back(ii);
        rep.outstanding += 1;
        global_queued += 1;
        stream_queued[admitted[i].stream] += 1;
        totals.max_queue_depth =
            std::max(totals.max_queue_depth, global_queued);
        tele.replica(r).routed += 1;
        (void)t;
        return ii;
    };

    /** Route a fresh instance of request @p i (arrival, failover,
     *  or hedge), stranding it when nothing is routable. */
    const auto routeInstance = [&](size_t i, double t, int exclude,
                                   bool is_hedge) {
        const int target =
            router.route(rstate[i].identity, routableSet(),
                         outstandingVec(), exclude);
        S2TA_TRACE_INSTANT("fleet", "place", target);
        return newInstance(i, target, t, is_hedge);
    };

    /** Dispatch instance @p ii on lane @p l of its replica: roll
     *  the attempt fault series (PR 6 identities, per instance),
     *  fold retries + backoff + stalls + brownout inflation into
     *  the lane occupancy, and schedule the completion. */
    const auto dispatch = [&](int ii, int l, double t) {
        Instance &in = insts[static_cast<size_t>(ii)];
        ReqState &rq = rstate[in.req];
        Rep &rep = reps[static_cast<size_t>(in.replica)];
        unqueue(ii);
        in.st = Instance::St::Running;
        in.lane = l;
        in.start_s = t;
        tele.replica(in.replica).dispatched += 1;
        if (inject) {
            const uint64_t inst_id = FaultInjector::combineId(
                admitted[in.req].id,
                static_cast<uint64_t>(in.seq));
            const size_t n_layers =
                workloads[rq.widx]->layers.size();
            for (int a = 0; a < max_attempts; ++a) {
                const AttemptFaults af = evaluateAttemptFaults(
                    *opts.run.fault,
                    FaultInjector::combineId(
                        inst_id, static_cast<uint64_t>(a)),
                    n_layers);
                in.attempts = a + 1;
                in.fault_count += af.fault_count;
                in.stall_events += af.stall_events;
                in.stall_cycles += af.stall_cycles;
                if (!af.faulted()) {
                    in.compute_failed = false;
                    in.fault_layer = -1;
                    break;
                }
                in.faulted_attempts += 1;
                in.compute_failed = true;
                in.fault_layer = af.fault_layer;
            }
        } else {
            in.attempts = 1;
        }
        const double service_s =
            opts.clock.cyclesToSeconds(pair_cycles(
                rq.widx, static_cast<size_t>(in.replica))) *
            rep.slowdown;
        const int failed_attempts =
            in.attempts - (in.compute_failed ? 0 : 1);
        double extra =
            opts.clock.cyclesToSeconds(in.stall_cycles);
        for (int a = 0; a < failed_attempts; ++a) {
            extra += service_s;
            extra += opts.overload.retry_backoff_s *
                     static_cast<double>(int64_t{1}
                                         << std::min(a, 20));
        }
        in.extra_delay_s = extra;
        in.finish_s =
            t + (in.compute_failed ? 0.0 : service_s) + extra;
        rep.lane_free[static_cast<size_t>(l)] = in.finish_s;
        tele.replica(in.replica).busy_s += in.finish_s - t;
        pq.push(Ev{in.finish_s, kEvCompletion, evseq++, ii, 0});
    };

    /** Work-conserving dispatch sweep: on every replica that is up,
     *  fill free lanes from the queue per the admission policy. */
    const auto dispatchAll = [&](double t) {
        for (size_t r = 0; r < nR; ++r) {
            Rep &rep = reps[r];
            if (!rep.up)
                continue;
            while (!rep.queue.empty()) {
                int lane = -1;
                for (size_t l = 0; l < rep.lane_free.size(); ++l) {
                    if (rep.lane_free[l] <= t) {
                        lane = static_cast<int>(l);
                        break;
                    }
                }
                if (lane < 0)
                    break;
                // The policy sees admission indices, as in the
                // single-accelerator event loop; each request has
                // at most one live instance per replica, so the
                // mapping back is unambiguous.
                std::vector<size_t> ready;
                std::map<size_t, int> inst_of;
                ready.reserve(rep.queue.size());
                for (const int ii : rep.queue) {
                    ready.push_back(
                        insts[static_cast<size_t>(ii)].req);
                    inst_of[insts[static_cast<size_t>(ii)].req] =
                        ii;
                }
                std::sort(ready.begin(), ready.end());
                const size_t picked = policy.pick(timed, ready);
                const int ii = inst_of.at(picked);
                Instance &in = insts[static_cast<size_t>(ii)];
                ReqState &rq = rstate[in.req];
                if (opts.overload.shed_infeasible &&
                    timed[picked].deadline_s != kNoDeadline &&
                    rq.live == 1 &&
                    t + opts.clock.cyclesToSeconds(
                            timed[picked].est_cycles) >
                        timed[picked].deadline_s) {
                    // Infeasible at dispatch time: shed instead of
                    // running hopelessly late (sole-instance
                    // requests only — a hedged request already has
                    // capacity invested). The lane stays free for
                    // the next pick.
                    unqueue(ii);
                    in.st = Instance::St::Cancelled;
                    reps[static_cast<size_t>(in.replica)]
                        .outstanding -= 1;
                    rq.live -= 1;
                    resolve(in.req, Outcome::Shed,
                            ShedReason::DeadlineInfeasible, -1, t);
                    continue;
                }
                dispatch(ii, lane, t);
            }
        }
    };

    /** The scheduler notices replica @p r is gone: every queued
     *  and silently-killed-running instance on it is lost; sole
     *  instances fail over (bounded) or fail typed. */
    const auto detectDown = [&](size_t r, double t) {
        Rep &rep = reps[r];
        rep.detected_down = true;
        for (size_t ii = 0; ii < insts.size(); ++ii) {
            Instance &in = insts[ii];
            if (in.replica != static_cast<int>(r))
                continue;
            if (in.st == Instance::St::Queued)
                unqueue(static_cast<int>(ii));
            else if (in.st != Instance::St::LostRunning)
                continue;
            in.st = Instance::St::Lost;
            rep.outstanding -= 1;
            totals.lost_instances += 1;
            tele.replica(static_cast<int>(r)).lost_instances += 1;
            ReqState &rq = rstate[in.req];
            // A discarded hedge loser's live count was already
            // settled at resolution; only unresolved requests
            // still carry this instance as live.
            if (rq.resolved)
                continue;
            rq.live -= 1;
            if (rq.live > 0)
                continue;
            if (rq.failovers < opts.max_failovers) {
                rq.failovers += 1;
                totals.failovers += 1;
                tele.recordFailover();
                S2TA_TRACE_INSTANT("fleet", "failover", in.req);
                S2TA_METRIC_INC("fleet.failovers");
                routeInstance(in.req, t, static_cast<int>(r),
                              false);
            } else {
                rstate[in.req].lost_to_crash = true;
                resolve(in.req, Outcome::Failed, ShedReason::None,
                        -1, t);
                if (rq.hedged)
                    tele.recordHedgeFailed();
            }
        }
    };

    const auto handleLifecycle = [&](const ReplicaEvent &ev,
                                     double t) {
        Rep &rep = reps[static_cast<size_t>(ev.replica)];
        S2TA_TRACE_INSTANT("fleet", replicaEventKindName(ev.kind),
                           ev.replica);
        switch (ev.kind) {
          case ReplicaEvent::Kind::Crash: {
            if (!rep.up)
                break;
            rep.up = false;
            rep.slowdown = 1.0;
            rep.crash_epoch += 1;
            totals.crashes += 1;
            tele.replica(ev.replica).crashes += 1;
            S2TA_METRIC_INC("fleet.crashes");
            // Failure detection from missed completions: the
            // heartbeat bounds detection at crash + detect_delay_s,
            // but the first *expected* completion that never
            // arrives tells the scheduler sooner.
            double detect_at = t + opts.detect_delay_s;
            for (Instance &in : insts) {
                if (in.replica == ev.replica &&
                    in.st == Instance::St::Running) {
                    in.st = Instance::St::LostRunning;
                    detect_at = std::min(detect_at, in.finish_s);
                }
            }
            pq.push(Ev{detect_at, kEvDetection, evseq++,
                       ev.replica, rep.crash_epoch});
            break;
          }
          case ReplicaEvent::Kind::Restart: {
            if (rep.up)
                break;
            // A restart observed before the crash was detected
            // forces the detection first: the lost instances are
            // not on the revived lanes.
            if (!rep.detected_down)
                detectDown(static_cast<size_t>(ev.replica), t);
            rep.up = true;
            rep.detected_down = false;
            rep.slowdown = 1.0;
            std::fill(rep.lane_free.begin(), rep.lane_free.end(),
                      t);
            totals.restarts += 1;
            tele.replica(ev.replica).restarts += 1;
            S2TA_METRIC_INC("fleet.restarts");
            // Stranded instances waited exactly for this.
            std::vector<int> still;
            for (const int ii : stranded) {
                Instance &in = insts[static_cast<size_t>(ii)];
                const int target = router.route(
                    rstate[in.req].identity, routableSet(),
                    outstandingVec(), -1);
                if (target < 0) {
                    still.push_back(ii);
                    continue;
                }
                in.replica = target;
                in.st = Instance::St::Queued;
                Rep &dst = reps[static_cast<size_t>(target)];
                dst.queue.push_back(ii);
                dst.outstanding += 1;
                global_queued += 1;
                stream_queued[admitted[in.req].stream] += 1;
                totals.max_queue_depth = std::max(
                    totals.max_queue_depth, global_queued);
                tele.replica(target).routed += 1;
            }
            stranded = std::move(still);
            break;
          }
          case ReplicaEvent::Kind::BrownoutStart:
            if (rep.up) {
                rep.slowdown = std::max(1.0, ev.slowdown);
                totals.brownouts += 1;
                tele.replica(ev.replica).brownouts += 1;
            }
            break;
          case ReplicaEvent::Kind::BrownoutEnd:
            rep.slowdown = 1.0;
            break;
          case ReplicaEvent::Kind::DrainStart:
            if (!rep.draining) {
                rep.draining = true;
                totals.drains += 1;
                tele.replica(ev.replica).drains += 1;
                S2TA_METRIC_INC("fleet.drains");
            }
            break;
          case ReplicaEvent::Kind::DrainEnd:
            rep.draining = false;
            break;
        }
    };

    /** First completion wins: settle the hedge and discard the
     *  loser (cancelled if still queued, run to waste if on a lane
     *  — non-preemptive, stranded losers are simply dropped). */
    const auto settleHedge = [&](size_t i, int winner, double t) {
        ReqState &rq = rstate[i];
        if (insts[static_cast<size_t>(winner)].is_hedge) {
            rq.hedge_won = true;
            tele.recordHedgeWin();
        } else {
            tele.recordHedgeLoss();
        }
        for (const int m : rq.members) {
            if (m == winner)
                continue;
            Instance &in = insts[static_cast<size_t>(m)];
            switch (in.st) {
              case Instance::St::Queued:
                unqueue(m);
                in.st = Instance::St::Cancelled;
                reps[static_cast<size_t>(in.replica)].outstanding -=
                    1;
                rq.live -= 1;
                tele.recordHedgeCancelled();
                break;
              case Instance::St::Running:
              case Instance::St::LostRunning:
                rq.live -= 1;
                tele.recordHedgeWasted();
                break;
              case Instance::St::Stranded:
                stranded.erase(std::find(stranded.begin(),
                                         stranded.end(), m));
                in.st = Instance::St::Cancelled;
                rq.live -= 1;
                break;
              default:
                break;
            }
        }
        (void)t;
    };

    const auto handleCompletion = [&](int ii, double t) {
        Instance &in = insts[static_cast<size_t>(ii)];
        if (in.st != Instance::St::Running)
            return; // Killed by a crash; nobody is listening.
        in.st = Instance::St::Finished;
        reps[static_cast<size_t>(in.replica)].outstanding -= 1;
        ReqState &rq = rstate[in.req];
        if (rq.resolved)
            return; // A wasted hedge loser ran out the clock.
        if (in.compute_failed) {
            rq.live -= 1;
            rq.final_inst = ii;
            if (rq.live == 0) {
                resolve(in.req, Outcome::Failed, ShedReason::None,
                        ii, t);
                if (rq.hedged)
                    tele.recordHedgeFailed();
            }
            return;
        }
        rq.live -= 1;
        resolve(in.req, Outcome::Ok, ShedReason::None, ii, t);
        tele.replica(in.replica).served += 1;
        if (rq.hedged)
            settleHedge(in.req, ii, t);
    };

    const auto handleArrival = [&](size_t i, double t) {
        const int stream = admitted[i].stream;
        if (opts.overload.global_queue_cap > 0 &&
            global_queued >= opts.overload.global_queue_cap) {
            resolve(i, Outcome::Shed, ShedReason::QueueFull, -1,
                    t);
            return;
        }
        if (opts.overload.stream_queue_cap > 0 &&
            stream_queued[stream] >=
                opts.overload.stream_queue_cap) {
            resolve(i, Outcome::Shed, ShedReason::StreamQueueFull,
                    -1, t);
            return;
        }
        const int ii = routeInstance(i, t, -1, false);
        timed[i].est_cycles = pair_cycles(
            rstate[i].widx,
            static_cast<size_t>(std::max(
                0, insts[static_cast<size_t>(ii)].replica)));
        timed[i].service_cycles = timed[i].est_cycles;
        if (opts.hedge_delay_s > 0.0 && R > 1)
            pq.push(Ev{t + opts.hedge_delay_s, kEvHedge, evseq++,
                       static_cast<int>(i), 0});
    };

    const auto handleHedge = [&](size_t i, double t) {
        ReqState &rq = rstate[i];
        if (rq.resolved || rq.hedged || rq.live != 1)
            return;
        int cur = -1;
        for (const int m : rq.members) {
            const Instance::St st =
                insts[static_cast<size_t>(m)].st;
            if (st == Instance::St::Queued ||
                st == Instance::St::Running ||
                st == Instance::St::LostRunning ||
                st == Instance::St::Stranded)
                cur = m;
        }
        if (cur < 0)
            return;
        const int exclude = insts[static_cast<size_t>(cur)].replica;
        const int target =
            router.route(rq.identity, routableSet(),
                         outstandingVec(), exclude);
        if (target < 0)
            return; // Nowhere to hedge to; not counted as launched.
        rq.hedged = true;
        tele.recordHedgeLaunched();
        S2TA_TRACE_INSTANT("fleet", "hedge", i);
        S2TA_METRIC_INC("fleet.hedges");
        newInstance(i, target, t, true);
    };

    double t_last = 0.0;
    while (!pq.empty()) {
        const Ev e = pq.top();
        pq.pop();
        t_last = std::max(t_last, e.t);
        switch (e.prio) {
          case kEvCompletion:
            handleCompletion(e.a, e.t);
            break;
          case kEvLifecycle:
            handleLifecycle(opts.schedule[static_cast<size_t>(e.a)],
                            e.t);
            break;
          case kEvDetection: {
            Rep &rep = reps[static_cast<size_t>(e.a)];
            if (!rep.up && !rep.detected_down &&
                e.b == rep.crash_epoch)
                detectDown(static_cast<size_t>(e.a), e.t);
            break;
          }
          case kEvArrival:
            handleArrival(static_cast<size_t>(e.a), e.t);
            break;
          case kEvHedge:
            handleHedge(static_cast<size_t>(e.a), e.t);
            break;
          default:
            s2ta_panic("unknown event priority %d", e.prio);
        }
        dispatchAll(e.t);
    }

    // Requests still stranded when the trace ends (no replica ever
    // came back) fail typed — never silently dropped.
    for (size_t i = 0; i < admitted.size(); ++i) {
        if (rstate[i].resolved)
            continue;
        rstate[i].lost_to_crash = true;
        resolve(i, Outcome::Failed, ShedReason::None, -1, t_last);
        if (rstate[i].hedged)
            tele.recordHedgeFailed();
    }

    // Instance-level ledger (every dispatched instance, including
    // wasted hedge losers and crash-killed runs, so the counters
    // reconcile exactly with the injector's per-site totals).
    for (const Instance &in : insts) {
        if (in.attempts == 0)
            continue;
        totals.retries += in.attempts - 1;
        totals.faulted_attempts += in.faulted_attempts;
        if (in.compute_failed)
            totals.failed_instances += 1;
        totals.layer_faults += in.fault_count;
        totals.stall_events += in.stall_events;
        totals.stall_cycles += in.stall_cycles;
    }

    // Reduction: walk admission order and group completions by
    // stream, exactly like the single-accelerator scheduler.
    std::vector<std::vector<FleetCompletion>> by_stream(
        queues.size());
    std::map<int, size_t> stream_slot;
    for (const auto &[stream, q] : queues)
        stream_slot.emplace(stream, stream_slot.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const Pending &p = admitted[i];
        const ReqState &rq = rstate[i];
        FleetCompletion c;
        c.id = p.id;
        c.stream = p.stream;
        c.model = p.model->spec.name;
        c.batch = p.model->layers.empty()
                      ? 1
                      : p.model->layers.front().batch;
        c.gemms = StreamScheduler::gemmCount(*p.model);
        c.arrival_s = p.arrival_s;
        c.deadline_s = p.deadline_s;
        c.outcome = rq.outcome;
        c.shed_reason = rq.reason;
        c.failovers = rq.failovers;
        c.instances = std::max<int>(
            1, static_cast<int>(rq.members.size()));
        c.hedged = rq.hedged;
        c.hedge_won = rq.hedge_won;
        c.lost_to_crash = rq.lost_to_crash;
        int att = 0;
        for (const int m : rq.members) {
            const Instance &in = insts[static_cast<size_t>(m)];
            att += in.attempts;
            c.fault_count += in.fault_count;
            c.stall_cycles += in.stall_cycles;
        }
        c.attempts = std::max(1, att);
        if (rq.final_inst >= 0) {
            const Instance &in =
                insts[static_cast<size_t>(rq.final_inst)];
            c.replica = in.replica;
            c.lane = in.lane;
            c.start_s = in.start_s;
            c.finish_s = in.finish_s;
            c.retry_delay_s = in.extra_delay_s;
            c.fault_layer = in.fault_layer;
            if (rq.outcome == Outcome::Ok) {
                c.service_cycles = pair_cycles(
                    rq.widx, static_cast<size_t>(in.replica));
                c.transfer_cycles = pair_transfer_raw
                    [rq.widx * nR +
                     static_cast<size_t>(in.replica)];
                totals.transfer_cycles += c.transfer_cycles;
                c.run = pair_runs[rq.widx * nR +
                                  static_cast<size_t>(in.replica)];
            }
        } else {
            c.replica = -1;
            c.lane = -1;
            c.start_s = rq.resolve_s;
            c.finish_s = rq.resolve_s;
        }

        totals.requests += 1;
        switch (rq.outcome) {
          case Outcome::Ok:
            totals.completed += 1;
            totals.layers +=
                static_cast<int64_t>(p.model->layers.size());
            totals.gemms += c.gemms;
            totals.dense_macs += c.run.dense_macs;
            break;
          case Outcome::Failed:
            totals.failed += 1;
            if (rq.lost_to_crash)
                totals.failed_crash += 1;
            else
                totals.failed_compute += 1;
            break;
          case Outcome::Shed:
            switch (rq.reason) {
              case ShedReason::QueueFull:
                totals.shed_queue_full += 1;
                break;
              case ShedReason::StreamQueueFull:
                totals.shed_stream_full += 1;
                break;
              case ShedReason::DeadlineInfeasible:
                totals.shed_infeasible += 1;
                break;
              case ShedReason::None:
                s2ta_panic("Shed without a reason");
            }
            break;
        }
        totals.makespan_s =
            std::max(totals.makespan_s, c.finish_s);

        if (opts.on_complete)
            opts.on_complete(c);
        by_stream[stream_slot.at(p.stream)].push_back(
            std::move(c));
    }

    // Per-replica cache snapshot for the fleet telemetry (the
    // warm-start story: a restarted replica's store_hits are the
    // plans it rehydrated instead of re-encoding).
    for (int r = 0; r < R; ++r) {
        if (!fleet[static_cast<size_t>(r)].cache)
            continue;
        const PlanCache::Stats cs =
            fleet[static_cast<size_t>(r)].cache->stats();
        tele.replica(r).cache_hits = cs.hits + cs.spill_hits;
        tele.replica(r).cache_misses = cs.misses;
        tele.replica(r).store_hits = cs.store_hits;
    }

    queues.clear();
    return by_stream;
}

} // namespace serve
} // namespace s2ta
