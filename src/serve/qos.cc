#include "serve/qos.hh"

#include "base/logging.hh"

namespace s2ta {
namespace serve {

namespace {

class RoundRobinPolicy final : public AdmissionPolicy
{
  public:
    const char *name() const override { return "rr"; }

    size_t
    pick(const std::vector<TimedRequest> &,
         const std::vector<size_t> &ready) const override
    {
        // Admission order is round-robin across streams by
        // construction, so FIFO over admission indices *is* the
        // round-robin dispatch the pre-QoS scheduler executed.
        return ready.front();
    }
};

class EarliestDeadlineFirstPolicy final : public AdmissionPolicy
{
  public:
    const char *name() const override { return "edf"; }

    size_t
    pick(const std::vector<TimedRequest> &all,
         const std::vector<size_t> &ready) const override
    {
        // kNoDeadline is +inf, so deadline-free requests lose to
        // any request with a real deadline; ready is ascending, so
        // strict < breaks ties on admission index.
        size_t best = ready.front();
        for (const size_t i : ready) {
            if (all[i].deadline_s < all[best].deadline_s)
                best = i;
        }
        return best;
    }
};

class ShortestJobFirstPolicy final : public AdmissionPolicy
{
  public:
    const char *name() const override { return "sjf"; }

    size_t
    pick(const std::vector<TimedRequest> &all,
         const std::vector<size_t> &ready) const override
    {
        size_t best = ready.front();
        for (const size_t i : ready) {
            if (all[i].est_cycles < all[best].est_cycles)
                best = i;
        }
        return best;
    }
};

} // anonymous namespace

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
      case ShedReason::None: return "none";
      case ShedReason::QueueFull: return "queue-full";
      case ShedReason::StreamQueueFull: return "stream-queue-full";
      case ShedReason::DeadlineInfeasible:
        return "deadline-infeasible";
    }
    s2ta_panic("unknown ShedReason %d", static_cast<int>(reason));
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Ok: return "ok";
      case Outcome::Shed: return "shed";
      case Outcome::Failed: return "failed";
    }
    s2ta_panic("unknown Outcome %d", static_cast<int>(outcome));
}

const AdmissionPolicy &
policyFor(PolicyKind kind)
{
    static const RoundRobinPolicy rr;
    static const EarliestDeadlineFirstPolicy edf;
    static const ShortestJobFirstPolicy sjf;
    switch (kind) {
    case PolicyKind::RoundRobin:
        return rr;
    case PolicyKind::EarliestDeadlineFirst:
        return edf;
    case PolicyKind::ShortestJobFirst:
        return sjf;
    }
    s2ta_panic("unknown PolicyKind %d", static_cast<int>(kind));
}

const char *
policyName(PolicyKind kind)
{
    return policyFor(kind).name();
}

PolicyKind
policyByName(const std::string &name)
{
    if (name == "rr")
        return PolicyKind::RoundRobin;
    if (name == "edf")
        return PolicyKind::EarliestDeadlineFirst;
    if (name == "sjf")
        return PolicyKind::ShortestJobFirst;
    s2ta_fatal("unknown admission policy '%s' (accepted values: %s)",
               name.c_str(), policyNameList());
}

} // namespace serve
} // namespace s2ta
