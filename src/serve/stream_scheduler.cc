#include "serve/stream_scheduler.hh"

#include <algorithm>

#include "base/thread_pool.hh"

namespace s2ta {
namespace serve {

StreamScheduler::StreamScheduler(const Accelerator &acc_,
                                 Options opts_)
    : acc(acc_), opts(std::move(opts_))
{
    s2ta_assert(opts.threads >= 0, "threads=%d", opts.threads);
    s2ta_assert(opts.clock.lanes >= 1, "clock.lanes=%d",
                opts.clock.lanes);
    s2ta_assert(opts.clock.clock_ghz > 0.0, "clock_ghz=%g",
                opts.clock.clock_ghz);
    if (opts.threads > 1)
        own_pool = std::make_unique<ThreadPool>(opts.threads - 1);
}

StreamScheduler::~StreamScheduler() = default;

ThreadPool *
StreamScheduler::pool() const
{
    if (opts.threads == 1)
        return nullptr;
    return own_pool ? own_pool.get() : &ThreadPool::global();
}

uint64_t
StreamScheduler::submit(int stream, const ModelWorkload &mw,
                        double arrival_s, double deadline_s)
{
    s2ta_assert(stream >= 0, "stream=%d", stream);
    s2ta_assert(arrival_s >= 0.0, "arrival_s=%g", arrival_s);
    const uint64_t id = next_id++;
    queues[stream].push_back(
        Pending{id, stream, &mw, arrival_s, deadline_s});
    return id;
}

int64_t
StreamScheduler::pending() const
{
    int64_t n = 0;
    for (const auto &[stream, q] : queues)
        n += static_cast<int64_t>(q.size());
    return n;
}

int64_t
StreamScheduler::gemmCount(const ModelWorkload &mw)
{
    int64_t gemms = 0;
    for (const LayerWorkload &wl : mw.layers)
        gemms += wl.shape.groups;
    return gemms;
}

std::pair<std::string, int>
StreamScheduler::workloadKey(const ModelWorkload &mw)
{
    return {mw.spec.name,
            mw.layers.empty() ? 1 : mw.layers.front().batch};
}

int64_t
StreamScheduler::estimatedCycles(const ModelWorkload &mw) const
{
    const auto it = cycle_estimates.find(workloadKey(mw));
    return it != cycle_estimates.end() ? it->second : 0;
}

std::vector<std::vector<Completion>>
StreamScheduler::drain()
{
    // Admission: round-robin across streams in ascending stream id
    // (std::map iteration order), one request per stream per round.
    // This is the order a fair serving frontend would admit mixed
    // tenants in, and it is deterministic in the submission
    // sequence alone.
    std::vector<Pending> admitted;
    admitted.reserve(static_cast<size_t>(pending()));
    for (size_t round = 0; true; ++round) {
        bool any = false;
        for (const auto &[stream, q] : queues) {
            if (round < q.size()) {
                admitted.push_back(q[round]);
                any = true;
            }
        }
        if (!any)
            break;
    }

    // Simulation: whole requests fan out across the lanes; the
    // accelerator's internal layer/group parallelFor runs inline
    // inside a lane (nested-parallelism rule of ThreadPool), so
    // request-level parallelism composes with the layer fan-out.
    // Each lane writes only its own slot; no cross-request state
    // beyond the mutex-guarded PlanCache. The admission policy
    // plays no part here: every request is simulated regardless,
    // so NetworkRuns are policy-independent by construction.
    std::vector<NetworkRun> runs(admitted.size());
    const auto run_one = [&](int64_t i) {
        runs[static_cast<size_t>(i)] = acc.runNetwork(
            admitted[static_cast<size_t>(i)].model->layers,
            opts.run);
    };
    ThreadPool *tp = pool();
    if (tp) {
        tp->parallelFor(static_cast<int64_t>(admitted.size()),
                        run_one);
    } else {
        for (size_t i = 0; i < admitted.size(); ++i)
            run_one(static_cast<int64_t>(i));
    }

    // Timing: replay the virtual clock over the simulated cycle
    // totals on the draining thread. Service estimates are pinned
    // per workload by the first simulated request (walked in
    // admission order, so the memo is deterministic); SJF orders by
    // the estimate, EDF by deadline, both tie-broken on admission
    // index inside the event loop.
    std::vector<TimedRequest> timed(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const Pending &p = admitted[i];
        const int64_t cycles = runs[i].total.cycles;
        auto it = cycle_estimates.find(workloadKey(*p.model));
        if (it == cycle_estimates.end()) {
            it = cycle_estimates
                     .emplace(workloadKey(*p.model), cycles)
                     .first;
        }
        timed[i].arrival_s = p.arrival_s;
        timed[i].deadline_s = p.deadline_s;
        timed[i].service_cycles = cycles;
        timed[i].est_cycles = it->second;
        timed[i].stream = p.stream;
        timed[i].id = p.id;
    }
    const AdmissionPolicy &policy =
        opts.policy ? *opts.policy
                    : policyFor(PolicyKind::RoundRobin);
    const std::vector<LaneAssignment> lanes =
        scheduleOnLanes(opts.clock, timed, policy);

    // Reduction: walk admission order (which preserves per-stream
    // submission order) and group completions by stream, so every
    // stream observes its requests complete strictly in the order
    // it issued them, independent of execution interleaving and of
    // the policy's dispatch order.
    std::vector<std::vector<Completion>> by_stream(queues.size());
    std::map<int, size_t> stream_slot;
    for (const auto &[stream, q] : queues)
        stream_slot.emplace(stream, stream_slot.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const Pending &p = admitted[i];
        Completion c;
        c.id = p.id;
        c.stream = p.stream;
        c.model = p.model->spec.name;
        c.batch = p.model->layers.empty()
                      ? 1
                      : p.model->layers.front().batch;
        c.gemms = gemmCount(*p.model);
        c.arrival_s = p.arrival_s;
        c.start_s = lanes[i].start_s;
        c.finish_s = lanes[i].finish_s;
        c.deadline_s = p.deadline_s;
        c.lane = lanes[i].lane;
        c.service_cycles = timed[i].service_cycles;
        c.run = std::move(runs[i]);

        totals.requests += 1;
        totals.layers +=
            static_cast<int64_t>(p.model->layers.size());
        totals.gemms += c.gemms;
        totals.dense_macs += c.run.dense_macs;

        if (opts.on_complete)
            opts.on_complete(c);
        by_stream[stream_slot.at(p.stream)].push_back(std::move(c));
    }
    queues.clear();
    return by_stream;
}

} // namespace serve
} // namespace s2ta
