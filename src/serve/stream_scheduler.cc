#include "serve/stream_scheduler.hh"

#include <algorithm>

#include "arch/backend.hh"
#include "base/fault_injection.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace s2ta {
namespace serve {

StreamScheduler::StreamScheduler(const Accelerator &acc_,
                                 Options opts_)
    : acc(acc_), opts(std::move(opts_))
{
    s2ta_assert(opts.threads >= 0, "threads=%d", opts.threads);
    s2ta_assert(opts.clock.lanes >= 1, "clock.lanes=%d",
                opts.clock.lanes);
    s2ta_assert(opts.clock.clock_ghz > 0.0, "clock_ghz=%g",
                opts.clock.clock_ghz);
    if (opts.threads > 1)
        own_pool = std::make_unique<ThreadPool>(opts.threads - 1);
}

StreamScheduler::~StreamScheduler() = default;

ThreadPool *
StreamScheduler::pool() const
{
    if (opts.threads == 1)
        return nullptr;
    return own_pool ? own_pool.get() : &ThreadPool::global();
}

uint64_t
StreamScheduler::submit(int stream, const ModelWorkload &mw,
                        double arrival_s, double deadline_s)
{
    s2ta_assert(stream >= 0, "stream=%d", stream);
    s2ta_assert(arrival_s >= 0.0, "arrival_s=%g", arrival_s);
    const uint64_t id = next_id++;
    queues[stream].push_back(
        Pending{id, stream, &mw, arrival_s, deadline_s});
    return id;
}

int64_t
StreamScheduler::pending() const
{
    int64_t n = 0;
    for (const auto &[stream, q] : queues)
        n += static_cast<int64_t>(q.size());
    return n;
}

int64_t
StreamScheduler::gemmCount(const ModelWorkload &mw)
{
    int64_t gemms = 0;
    for (const LayerWorkload &wl : mw.layers)
        gemms += wl.shape.groups;
    return gemms;
}

std::pair<std::string, int>
StreamScheduler::workloadKey(const ModelWorkload &mw)
{
    return {mw.spec.name,
            mw.layers.empty() ? 1 : mw.layers.front().batch};
}

int64_t
StreamScheduler::estimatedCycles(const ModelWorkload &mw) const
{
    const auto it = cycle_estimates.find(workloadKey(mw));
    return it != cycle_estimates.end() ? it->second : 0;
}

std::vector<std::vector<Completion>>
StreamScheduler::drain()
{
    // Admission: round-robin across streams in ascending stream id
    // (std::map iteration order), one request per stream per round.
    // This is the order a fair serving frontend would admit mixed
    // tenants in, and it is deterministic in the submission
    // sequence alone.
    std::vector<Pending> admitted;
    admitted.reserve(static_cast<size_t>(pending()));
    for (size_t round = 0; true; ++round) {
        bool any = false;
        for (const auto &[stream, q] : queues) {
            if (round < q.size()) {
                admitted.push_back(q[round]);
                any = true;
            }
        }
        if (!any)
            break;
    }
    // Observation only: spans/instants/counters record wall-clock
    // truth about this drain and never feed back into simulation
    // or timing (tests/obs/test_trace.cc gates the bits).
    S2TA_TRACE_COUNTER("serve", "serve.admitted", admitted.size());
    for ([[maybe_unused]] const Pending &p : admitted)
        S2TA_TRACE_INSTANT("serve", "admit", p.id);
    S2TA_METRIC_ADD("serve.requests", admitted.size());

    // Simulation: whole requests fan out across the lanes; the
    // accelerator's internal layer/group parallelFor runs inline
    // inside a lane (nested-parallelism rule of ThreadPool), so
    // request-level parallelism composes with the layer fan-out.
    // Each lane writes only its own slot; no cross-request state
    // beyond the mutex-guarded PlanCache. The admission policy
    // plays no part here: every request is simulated regardless,
    // so NetworkRuns are policy-independent by construction.
    //
    // With a fault injector attached, each request retries up to
    // max_retries times after a transient compute fault. Fault
    // identities are combineId(request id, attempt) — pure
    // functions of the submission sequence, never of thread
    // interleaving — so the set of faulted attempts, and therefore
    // every retry and failure, is identical at every thread count.
    // A faulted attempt aborts before simulating (the accelerator
    // returns a cleanly failed run), so a request that eventually
    // succeeds simulates exactly once and its NetworkRun is bitwise
    // identical to the fault-free run.
    struct SimResult
    {
        NetworkRun run;
        int attempts = 1;
        int faulted_attempts = 0;
        int fault_layer = -1;
        int64_t fault_count = 0;
        int64_t stall_events = 0;
        int64_t stall_cycles = 0;
        /** Modeled link cycles of the served attempt (backend
         *  path only; faulted attempts abort before staging). */
        int64_t transfer_cycles = 0;
        bool failed = false;
    };
    std::vector<SimResult> sims(admitted.size());
    const bool inject = opts.run.fault != nullptr;
    const int max_attempts =
        1 + std::max(0, opts.overload.max_retries);
    const auto run_one = [&](int64_t idx) {
        SimResult &sr = sims[static_cast<size_t>(idx)];
        const Pending &p = admitted[static_cast<size_t>(idx)];
        S2TA_TRACE_SPAN_ID("serve", "simulate", p.id);
        for (int a = 0; a < max_attempts; ++a) {
            NetworkRunOptions ro = opts.run;
            if (inject) {
                ro.fault_id = FaultInjector::combineId(
                    p.id, static_cast<uint64_t>(a));
            }
            // The backend path drives the request through the async
            // command queue (prepare of layer k+1 overlapping
            // execute of layer k) and reports the attempt's modeled
            // link cycles; the direct path is the bare accelerator.
            // Both produce bitwise-identical NetworkRuns.
            NetworkRun nr;
            int64_t tc = 0;
            if (opts.backend != nullptr) {
                BackendNetworkRun br =
                    opts.backend->runNetworkTimed(p.model->layers,
                                                  ro);
                nr = std::move(br.run);
                tc = br.transfer_cycles;
            } else {
                nr = acc.runNetwork(p.model->layers, ro);
            }
            sr.attempts = a + 1;
            sr.fault_count += nr.fault_count;
            sr.stall_events += nr.stall_events;
            sr.stall_cycles += nr.stall_cycles;
            if (!nr.faulted()) {
                sr.transfer_cycles = tc;
                sr.run = std::move(nr);
                sr.failed = false;
                sr.fault_layer = -1;
                return;
            }
            ++sr.faulted_attempts;
            sr.failed = true;
            sr.fault_layer = nr.fault_layer;
        }
    };
    ThreadPool *tp = pool();
    if (tp) {
        tp->parallelFor(static_cast<int64_t>(admitted.size()),
                        run_one);
    } else {
        for (size_t i = 0; i < admitted.size(); ++i)
            run_one(static_cast<int64_t>(i));
    }

    // Timing: replay the virtual clock over the simulated cycle
    // totals on the draining thread. Service estimates are pinned
    // per workload by the first *successfully* simulated request
    // (walked in admission order, so the memo is deterministic);
    // SJF orders by the estimate, EDF by deadline, both tie-broken
    // on admission index inside the event loop.
    //
    // Retry timing is inline on the lane: every failed attempt
    // occupies its service time (the eventual run's cycles, or the
    // workload estimate when no attempt ever succeeded) plus an
    // exponentially growing backoff, all folded into the request's
    // extra_delay_s — the overload a flaky request inflicts on the
    // requests queued behind it. Injected stalls land there too:
    // timing only, never results.
    std::vector<TimedRequest> timed(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const Pending &p = admitted[i];
        const SimResult &sr = sims[i];
        const int64_t cycles =
            sr.failed ? 0 : sr.run.total.cycles;
        auto it = cycle_estimates.find(workloadKey(*p.model));
        if (it == cycle_estimates.end() && !sr.failed) {
            it = cycle_estimates
                     .emplace(workloadKey(*p.model), cycles)
                     .first;
        }
        const int64_t est =
            it != cycle_estimates.end() ? it->second : 0;
        const int failed_attempts =
            sr.attempts - (sr.failed ? 0 : 1);
        const int64_t attempt_cost = sr.failed ? est : cycles;
        double extra = opts.clock.cyclesToSeconds(sr.stall_cycles);
        for (int a = 0; a < failed_attempts; ++a) {
            extra += opts.clock.cyclesToSeconds(attempt_cost);
            extra += opts.overload.retry_backoff_s *
                     static_cast<double>(int64_t{1}
                                         << std::min(a, 20));
        }
        // Link transfer through a device backend: a queue deep
        // enough to double-buffer hides transfer behind service
        // (mirroring the accelerator's compute/DMA overlap model),
        // so only the excess is visible lane time; at depth 1 the
        // full transfer serializes with service.
        if (opts.backend != nullptr && sr.transfer_cycles > 0) {
            const int64_t visible =
                opts.backend->queueConfig().queue_depth > 1
                    ? std::max<int64_t>(
                          0, sr.transfer_cycles - cycles)
                    : sr.transfer_cycles;
            extra += opts.clock.cyclesToSeconds(visible);
        }
        timed[i].arrival_s = p.arrival_s;
        timed[i].deadline_s = p.deadline_s;
        timed[i].service_cycles = cycles;
        timed[i].est_cycles = est;
        timed[i].extra_delay_s = extra;
        timed[i].stream = p.stream;
        timed[i].id = p.id;
        S2TA_TRACE_INSTANT("serve", "queue", p.id);
    }
    const AdmissionPolicy &policy =
        opts.policy ? *opts.policy
                    : policyFor(PolicyKind::RoundRobin);
    ScheduleStats sched_stats;
    const std::vector<LaneAssignment> lanes = scheduleOnLanes(
        opts.clock, timed, policy, opts.overload, &sched_stats);

    // Reduction: walk admission order (which preserves per-stream
    // submission order) and group completions by stream, so every
    // stream observes its requests complete strictly in the order
    // it issued them, independent of execution interleaving and of
    // the policy's dispatch order.
    std::vector<std::vector<Completion>> by_stream(queues.size());
    std::map<int, size_t> stream_slot;
    for (const auto &[stream, q] : queues)
        stream_slot.emplace(stream, stream_slot.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
        const Pending &p = admitted[i];
        SimResult &sr = sims[i];
        Completion c;
        c.id = p.id;
        c.stream = p.stream;
        c.model = p.model->spec.name;
        c.batch = p.model->layers.empty()
                      ? 1
                      : p.model->layers.front().batch;
        c.gemms = gemmCount(*p.model);
        c.arrival_s = p.arrival_s;
        c.start_s = lanes[i].start_s;
        c.finish_s = lanes[i].finish_s;
        c.deadline_s = p.deadline_s;
        c.attempts = sr.attempts;
        c.fault_count = sr.fault_count;
        c.stall_cycles = sr.stall_cycles;
        c.transfer_cycles = sr.transfer_cycles;
        c.retry_delay_s = timed[i].extra_delay_s;
        if (lanes[i].shed != ShedReason::None)
            S2TA_TRACE_INSTANT("serve", "shed", p.id);
        else
            S2TA_TRACE_INSTANT("serve", "dispatch", lanes[i].lane);
        S2TA_TRACE_INSTANT("serve", "complete", p.id);
        if (lanes[i].shed != ShedReason::None) {
            // Shed wins over a simulation failure: the request was
            // never dispatched, so no result — good or failed —
            // was ever owed.
            c.outcome = Outcome::Shed;
            c.shed_reason = lanes[i].shed;
            c.lane = -1;
        } else if (sr.failed) {
            c.outcome = Outcome::Failed;
            c.fault_layer = sr.fault_layer;
            c.lane = lanes[i].lane;
        } else {
            c.lane = lanes[i].lane;
            c.service_cycles = timed[i].service_cycles;
            c.run = std::move(sr.run);
        }

        totals.requests += 1;
        totals.retries += sr.attempts - 1;
        totals.faulted_attempts += sr.faulted_attempts;
        totals.layer_faults += sr.fault_count;
        totals.stall_events += sr.stall_events;
        totals.stall_cycles += sr.stall_cycles;
        totals.transfer_cycles += sr.transfer_cycles;
        if (sr.failed)
            totals.failed += 1;
        switch (c.shed_reason) {
          case ShedReason::QueueFull:
            totals.shed_queue_full += 1;
            break;
          case ShedReason::StreamQueueFull:
            totals.shed_stream_full += 1;
            break;
          case ShedReason::DeadlineInfeasible:
            totals.shed_infeasible += 1;
            break;
          case ShedReason::None:
            break;
        }
        if (c.ok()) {
            totals.completed += 1;
            totals.layers +=
                static_cast<int64_t>(p.model->layers.size());
            totals.gemms += c.gemms;
            totals.dense_macs += c.run.dense_macs;
        }

        if (opts.on_complete)
            opts.on_complete(c);
        by_stream[stream_slot.at(p.stream)].push_back(std::move(c));
    }
    totals.max_queue_depth = std::max(totals.max_queue_depth,
                                      sched_stats.max_queue_depth);
    S2TA_METRIC_ADD("serve.dispatched", sched_stats.dispatched);
    S2TA_METRIC_ADD("serve.shed", sched_stats.shedTotal());
    S2TA_METRIC_SET("serve.max_queue_depth",
                    totals.max_queue_depth);
    queues.clear();
    return by_stream;
}

} // namespace serve
} // namespace s2ta
