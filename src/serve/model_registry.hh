/**
 * @file
 * Deterministic registry of servable model workloads.
 *
 * A serving deployment holds a fixed set of deployed models; every
 * request names one of them plus a batch size. The registry maps
 * (zoo model name, batch) to a ready-to-run ModelWorkload:
 *
 *  - the batch-1 base workload of each model is generated once from
 *    a seed derived only from (registry seed, model name), so two
 *    registries with the same seed produce bit-identical workloads
 *    no matter which requests arrive first;
 *  - batch variants carry *distinct* per-sample content by default
 *    (the real serving scenario: a request's samples are different
 *    images): sample 0 is the batch-1 base and sample s >= 1 is
 *    generated from a seed derived only from (model seed, s), so
 *    batches of different sizes share their common sample prefix
 *    (workload/model_workloads.hh withDistinctBatch). Weights,
 *    profile, and declared bounds are the deployed model's, shared
 *    across every batch size;
 *  - BatchMode::Replicate instead replicates the batch-1 sample
 *    via withBatch — the pre-QoS behavior, kept for equivalence-
 *    style checks and cache-dedup studies that want every sample
 *    bit-identical (the integration equivalence tests call
 *    withBatch directly; the mode gives registry-driven harnesses
 *    the same semantics);
 *  - entries are built on first use and live for the registry's
 *    lifetime, so the ModelWorkload pointers handed to the
 *    scheduler stay stable while requests are in flight.
 *
 * Not thread-safe: build the trace (and thereby the registry
 * entries) before handing workload pointers to concurrent
 * consumers. StreamScheduler::drain only reads the workloads.
 */

#ifndef S2TA_SERVE_MODEL_REGISTRY_HH
#define S2TA_SERVE_MODEL_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "workload/model_workloads.hh"

namespace s2ta {
namespace serve {

/** How batch > 1 entries derive their samples. */
enum class BatchMode
{
    /** Seeded distinct content per sample index (the default). */
    Distinct,
    /** Replicate the batch-1 sample (equivalence-test mode). */
    Replicate,
};

class ModelRegistry
{
  public:
    /**
     * @param seed base seed every workload derives from.
     * @param mode sample derivation for batch > 1 entries.
     */
    explicit ModelRegistry(uint64_t seed = 0x5E47E,
                           BatchMode mode = BatchMode::Distinct);

    /**
     * Workload for (@p model, @p batch), built on first use. The
     * model name is a zoo CLI name (lenet5|alexnet|vgg16|
     * mobilenetv1|resnet50); fatal on unknown names or batch < 1.
     * The returned reference is stable for the registry's lifetime.
     */
    const ModelWorkload &workload(const std::string &model,
                                  int batch = 1);

    /** Distinct (model, batch) entries currently resident. */
    int entries() const { return static_cast<int>(cache.size()); }

    BatchMode batchMode() const { return mode; }

  private:
    /** Workload seed for @p model (pure function of the name). */
    uint64_t modelSeed(const std::string &model) const;

    const uint64_t seed;
    const BatchMode mode;
    /** Keyed by (model name, batch); batch-1 bases included. */
    std::map<std::pair<std::string, int>,
             std::unique_ptr<ModelWorkload>>
        cache;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_MODEL_REGISTRY_HH
