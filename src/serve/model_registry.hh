/**
 * @file
 * Deterministic registry of servable model workloads.
 *
 * A serving deployment holds a fixed set of deployed models; every
 * request names one of them plus a batch size. The registry maps
 * (zoo model name, batch) to a ready-to-run ModelWorkload:
 *
 *  - the batch-1 base workload of each model is generated once from
 *    a seed derived only from (registry seed, model name), so two
 *    registries with the same seed produce bit-identical workloads
 *    no matter which requests arrive first;
 *  - batch variants replicate the base inputs along a leading batch
 *    dimension (workload/model_workloads.hh withBatch), sharing the
 *    deployed model's weights — exactly the content-duplication a
 *    shared PlanCache exploits across requests;
 *  - entries are built on first use and live for the registry's
 *    lifetime, so the ModelWorkload pointers handed to the
 *    scheduler stay stable while requests are in flight.
 *
 * Not thread-safe: build the trace (and thereby the registry
 * entries) before handing workload pointers to concurrent
 * consumers. StreamScheduler::drain only reads the workloads.
 */

#ifndef S2TA_SERVE_MODEL_REGISTRY_HH
#define S2TA_SERVE_MODEL_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "workload/model_workloads.hh"

namespace s2ta {
namespace serve {

class ModelRegistry
{
  public:
    /** @param seed base seed every workload derives from. */
    explicit ModelRegistry(uint64_t seed = 0x5E47E);

    /**
     * Workload for (@p model, @p batch), built on first use. The
     * model name is a zoo CLI name (lenet5|alexnet|vgg16|
     * mobilenetv1|resnet50); fatal on unknown names or batch < 1.
     * The returned reference is stable for the registry's lifetime.
     */
    const ModelWorkload &workload(const std::string &model,
                                  int batch = 1);

    /** Distinct (model, batch) entries currently resident. */
    int entries() const { return static_cast<int>(cache.size()); }

  private:
    const uint64_t seed;
    /** Keyed by (model name, batch); batch-1 bases included. */
    std::map<std::pair<std::string, int>,
             std::unique_ptr<ModelWorkload>>
        cache;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_MODEL_REGISTRY_HH
