/**
 * @file
 * Wall-clock replay serving: the measured-time counterpart of the
 * virtual-clock StreamScheduler.
 *
 * Everything the serving stack gates today is virtual time — the
 * QoS latencies, overload behavior, and fleet failover numbers are
 * all computed by a discrete-event loop over seeded traces. This
 * driver replays the *same* trace open-loop against real
 * std::chrono::steady_clock on a real ThreadPool: a feeder thread
 * publishes each request at its scheduled wall arrival instant
 * (open-loop: arrivals never wait for the system, exactly like the
 * virtual trace), N worker lanes pull published requests in the
 * order the configured AdmissionPolicy dictates and run the full
 * simulation, and every completion carries *measured* enqueue /
 * start / finish instants read from the monotonic clock.
 *
 * The determinism contract splits in two, deliberately:
 *
 *  - **Results**: each request's NetworkRun is computed by the same
 *    const Accelerator (through the same shared PlanCache) as the
 *    virtual run, so served results are bitwise identical to the
 *    virtual-time drain — bench_wallclock_serving gates this.
 *  - **Timing**: measured instants are real and therefore *not*
 *    reproducible run to run; they are the point. The bench reports
 *    them side by side with the virtual quantiles.
 *
 * Per-request spans and counters are emitted through the global
 * Tracer (obs/trace.hh) under the "replay" category, so a replay
 * opened in Perfetto shows the feeder's arrivals against each
 * lane's request spans.
 */

#ifndef S2TA_SERVE_WALLCLOCK_REPLAY_HH
#define S2TA_SERVE_WALLCLOCK_REPLAY_HH

#include <vector>

#include "arch/accelerator.hh"
#include "serve/qos.hh"
#include "serve/telemetry.hh"
#include "workload/model_workloads.hh"

namespace s2ta {
namespace serve {

/**
 * One request of a wall-clock trace. Index order in the trace
 * vector is *admission order* — build the trace in the same
 * round-robin admission order the virtual StreamScheduler uses and
 * the policy sees the identical ready-set structure.
 */
struct WallclockRequest
{
    /** Workload to simulate; borrowed, must outlive the replay. */
    const ModelWorkload *model = nullptr;
    int stream = 0;
    /** Scheduled open-loop arrival, wall seconds from replay
     *  start (ascending is not required across the trace; the
     *  feeder sorts). */
    double arrival_s = 0.0;
    /** Wall-clock deadline from replay start, or kNoDeadline. */
    double deadline_s = kNoDeadline;
    /** Policy-visible service estimate (SJF ordering), in the same
     *  cycle units the virtual run used. */
    int64_t est_cycles = 0;
};

/** One served request with measured wall-clock instants. */
struct WallclockCompletion
{
    /** Trace index (== admission index). */
    size_t index = 0;
    int stream = 0;
    /** Worker lane (0-based) that served the request. */
    int lane = -1;
    /** Scheduled arrival (copied from the trace; the open-loop
     *  latency baseline, exactly as in virtual time). */
    double arrival_s = 0.0;
    /** Measured instant the feeder published the request. */
    double enqueue_s = 0.0;
    /** Measured instant a lane picked the request up. */
    double start_s = 0.0;
    /** Measured completion instant. */
    double finish_s = 0.0;
    double deadline_s = kNoDeadline;
    /** Simulation result; bitwise identical to the virtual run's. */
    NetworkRun run;

    /** Measured timing, ready for LatencyTelemetry. */
    LatencySample
    sample() const
    {
        return LatencySample{stream, arrival_s, start_s, finish_s,
                             deadline_s};
    }
};

struct WallclockReplayOptions
{
    /** Simulation knobs shared by every request (engine, shared
     *  plan cache, ...) — use the same options as the virtual run
     *  for bitwise-identical results. */
    NetworkRunOptions run;
    /** Concurrent serving lanes (dedicated worker threads). */
    int lanes = 2;
    /** Dispatch-order policy; borrowed, nullptr = round-robin
     *  (admission order). */
    const AdmissionPolicy *policy = nullptr;
};

/**
 * Replay @p trace open-loop against the wall clock on @p acc.
 * Blocks until every request is served (runs for at least the
 * trace's arrival horizon in real time). Returns completions
 * indexed like @p trace.
 *
 * Uses a dedicated ThreadPool of opts.lanes workers plus the
 * calling thread; each request's internal layer/group fan-out runs
 * inline on its lane (the nested-parallelism rule), so lanes model
 * independent serving replicas of one accelerator.
 */
std::vector<WallclockCompletion>
replayWallclock(const Accelerator &acc,
                const std::vector<WallclockRequest> &trace,
                const WallclockReplayOptions &opts);

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_WALLCLOCK_REPLAY_HH
