/**
 * @file
 * Virtual-clock request timing for the serving layer.
 *
 * Serving latency in this repo is *simulated time*, not wall
 * clock: a request's service time is its NetworkRun's simulated
 * cycle total (the same accounting the paper's speedup and energy
 * claims rest on) divided by a configurable accelerator clock, and
 * its arrival time comes from a seeded open-loop Poisson trace. A
 * discrete-event loop over N virtual accelerator lanes then assigns
 * every request a start and finish instant: whenever a lane frees,
 * the configured AdmissionPolicy (serve/qos.hh) picks among the
 * requests that have arrived by that instant; when nothing is
 * waiting, virtual time advances to the next arrival.
 *
 * Everything here is exact double arithmetic over deterministic
 * inputs — no wall-clock reads, no randomness beyond the caller's
 * seeded Rng — so a fixed trace produces bit-identical timings on
 * every run, at every simulation thread count, on every machine.
 */

#ifndef S2TA_SERVE_VIRTUAL_CLOCK_HH
#define S2TA_SERVE_VIRTUAL_CLOCK_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "serve/qos.hh"

namespace s2ta {
namespace serve {

/** The virtual accelerator deployment behind a scheduler. */
struct VirtualClockConfig
{
    /** Independent accelerator lanes serving requests. */
    int lanes = 1;
    /** Accelerator clock in GHz (cycles -> virtual seconds). */
    double clock_ghz = 1.0;

    double
    cyclesToSeconds(int64_t cycles) const
    {
        return static_cast<double>(cycles) / (clock_ghz * 1e9);
    }
};

/** Virtual start/finish instants assigned to one request. */
struct LaneAssignment
{
    double start_s = 0.0;
    double finish_s = 0.0;
    /** Lane the request ran on; -1 when shed. */
    int lane = 0;
    /** Why the request was shed (None = it was dispatched). A shed
     *  request's start/finish both equal the shed instant. */
    ShedReason shed = ShedReason::None;
};

/** Event-loop outcome counters for one schedule. */
struct ScheduleStats
{
    int64_t dispatched = 0;
    int64_t shed_queue_full = 0;
    int64_t shed_stream_full = 0;
    int64_t shed_infeasible = 0;
    /** High-water arrived-but-undispatched queue depth. */
    int64_t max_queue_depth = 0;

    int64_t
    shedTotal() const
    {
        return shed_queue_full + shed_stream_full + shed_infeasible;
    }
};

/**
 * Run the discrete-event loop: assign start/finish times to every
 * request in @p reqs (admission order) over @p cfg.lanes lanes,
 * dispatching per @p policy. Non-preemptive and work-conserving: a
 * free lane never idles while an arrived request waits, and a
 * dispatched request runs to completion. Returns assignments
 * indexed like @p reqs.
 */
std::vector<LaneAssignment>
scheduleOnLanes(const VirtualClockConfig &cfg,
                const std::vector<TimedRequest> &reqs,
                const AdmissionPolicy &policy);

/**
 * Overload-aware variant: queue caps shed a request the instant it
 * arrives over a full queue (global or its stream's), and
 * shed_infeasible sheds at dispatch time any waiting request whose
 * deadline cannot be met even if dispatched immediately (judged on
 * est_cycles). Sheds happen *in virtual time* on deterministic
 * inputs, so the shed set is a pure function of the trace and the
 * caps — identical at every thread count. With a default
 * OverloadConfig this is exactly the base loop.
 */
std::vector<LaneAssignment>
scheduleOnLanes(const VirtualClockConfig &cfg,
                const std::vector<TimedRequest> &reqs,
                const AdmissionPolicy &policy,
                const OverloadConfig &overload,
                ScheduleStats *stats = nullptr);

/**
 * Open-loop Poisson arrival trace: @p n arrival instants with
 * exponential inter-arrival gaps at @p rate_rps requests per
 * virtual second, drawn from @p rng (seeded by the caller, so the
 * trace is a pure function of the seed). Returned ascending.
 */
std::vector<double> poissonArrivals(int n, double rate_rps,
                                    Rng &rng);

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_VIRTUAL_CLOCK_HH
