/**
 * @file
 * Streaming latency telemetry for the serving QoS layer.
 *
 * A LatencyTelemetry accumulates one LatencySample per completed
 * request as completions stream out of a drain: end-to-end latency
 * (finish - arrival) feeds an exact quantile store plus a
 * log2-bucketed histogram, queueing delay (start - arrival) feeds a
 * per-stream breakdown, and deadline outcomes feed miss counters.
 *
 * Everything is computed from virtual-time instants, so two
 * telemetry objects fed the same completions agree bit for bit —
 * the quantiles are *exact* (nearest-rank over the full sample set,
 * not an approximation sketch) and deterministic at every thread
 * count. Accumulation is O(1) per sample (amortized); quantiles()
 * sorts a copy on demand.
 *
 * Not thread-safe: record from the draining thread (the scheduler's
 * on_complete callback runs there) or guard externally.
 */

#ifndef S2TA_SERVE_TELEMETRY_HH
#define S2TA_SERVE_TELEMETRY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "serve/qos.hh"

namespace s2ta {
namespace serve {

/** The timing of one completed request, in virtual seconds. */
struct LatencySample
{
    int stream = 0;
    double arrival_s = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;
    double deadline_s = kNoDeadline;

    /** End-to-end latency: queueing + service. */
    double latency() const { return finish_s - arrival_s; }
    /** Time spent queued before a lane picked the request up. */
    double queueing() const { return start_s - arrival_s; }
    /** True when the request carried a deadline at all. */
    bool hasDeadline() const { return deadline_s != kNoDeadline; }
    /** True when a carried deadline was missed. */
    bool
    missedDeadline() const
    {
        return hasDeadline() && finish_s > deadline_s;
    }
};

/** Exact nearest-rank latency quantiles, in virtual seconds. */
struct LatencyQuantiles
{
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
};

/** Queueing-delay breakdown of one stream. */
struct StreamDelay
{
    int64_t requests = 0;
    double queue_sum_s = 0.0;
    double queue_max_s = 0.0;
    int64_t deadline_misses = 0;

    double
    meanQueue() const
    {
        return requests > 0
                   ? queue_sum_s / static_cast<double>(requests)
                   : 0.0;
    }
};

/** One populated histogram bucket. */
struct HistogramBin
{
    /** Latency range [lo_s, hi_s) the bucket covers. */
    double lo_s = 0.0;
    double hi_s = 0.0;
    int64_t count = 0;
};

/**
 * Shed/retry/fault/degraded counters for overload serving,
 * accumulated from completion outcomes as they stream out of a
 * drain. Like LatencyTelemetry: deterministic inputs, not
 * thread-safe, record from the draining thread. The counters mirror
 * ServeStats so harnesses can cross-check the completion stream
 * against the scheduler's own accounting (and both against the
 * fault injector's per-site totals).
 */
class RobustnessTelemetry
{
  public:
    /** Fold one completion's outcome in (outcome, shed reason,
     *  attempts consumed, injected layer faults, stall cycles). */
    void recordOutcome(Outcome outcome, ShedReason reason,
                       int attempts, int64_t fault_count,
                       int64_t stall_cycles);

    /** Count store/spill fault fallbacks to a colder tier. */
    void recordDegraded(int64_t n) { degraded_ += n; }

    int64_t total() const { return total_; }
    int64_t completed() const { return completed_; }
    int64_t shedQueueFull() const { return shed_queue_full_; }
    int64_t shedStreamFull() const { return shed_stream_full_; }
    int64_t shedInfeasible() const { return shed_infeasible_; }
    int64_t
    shedTotal() const
    {
        return shed_queue_full_ + shed_stream_full_ +
               shed_infeasible_;
    }
    int64_t failed() const { return failed_; }
    int64_t retries() const { return retries_; }
    int64_t layerFaults() const { return layer_faults_; }
    int64_t stallCycles() const { return stall_cycles_; }
    int64_t degraded() const { return degraded_; }

    /** Shed requests over all requests (0 when none recorded). */
    double
    shedRate() const
    {
        return total_ > 0 ? static_cast<double>(shedTotal()) /
                                static_cast<double>(total_)
                          : 0.0;
    }

    void clear();

  private:
    int64_t total_ = 0;
    int64_t completed_ = 0;
    int64_t shed_queue_full_ = 0;
    int64_t shed_stream_full_ = 0;
    int64_t shed_infeasible_ = 0;
    int64_t failed_ = 0;
    int64_t retries_ = 0;
    int64_t layer_faults_ = 0;
    int64_t stall_cycles_ = 0;
    int64_t degraded_ = 0;
};

/** Per-replica serving counters for fleet telemetry. */
struct ReplicaUsage
{
    /** Request instances routed here (original placements,
     *  failover re-dispatches, and hedges all count). */
    int64_t routed = 0;
    /** Instances a lane actually picked up. */
    int64_t dispatched = 0;
    /** Ok completions this replica won. */
    int64_t served = 0;
    /** Lane occupancy in virtual seconds (service + retry/backoff
     *  + stall + brownout inflation). */
    double busy_s = 0.0;
    /** Lifecycle events applied to this replica. */
    int64_t crashes = 0;
    int64_t restarts = 0;
    int64_t brownouts = 0;
    int64_t drains = 0;
    /** Instances lost to a crash while queued or running here. */
    int64_t lost_instances = 0;
    /** Snapshot of the replica's PlanCache counters (hits/misses
     *  across both in-RAM tiers, plus shared-store hits — the
     *  warm-start path a restarted replica hydrates through). */
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t store_hits = 0;

    double
    hitRate() const
    {
        const int64_t lookups = cache_hits + cache_misses;
        return lookups > 0 ? static_cast<double>(cache_hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
    }
};

/**
 * Fleet-level telemetry: per-replica utilization, routing skew,
 * failover/hedge counts, and cache-hit variance across replicas.
 * Deterministic inputs (the fleet event loop runs serially on the
 * draining thread); not thread-safe.
 */
class FleetTelemetry
{
  public:
    explicit FleetTelemetry(int replicas = 0)
        : usage_(static_cast<size_t>(replicas))
    {
    }

    int replicas() const { return static_cast<int>(usage_.size()); }
    ReplicaUsage &replica(int r) { return usage_.at(size_t(r)); }
    const ReplicaUsage &
    replica(int r) const
    {
        return usage_.at(static_cast<size_t>(r));
    }
    const std::vector<ReplicaUsage> &all() const { return usage_; }

    void recordFailover() { failovers_ += 1; }
    void recordHedgeLaunched() { hedges_launched_ += 1; }
    void recordHedgeWin() { hedge_wins_ += 1; }
    void recordHedgeLoss() { hedge_losses_ += 1; }
    /** A hedged request where neither instance delivered. */
    void recordHedgeFailed() { hedge_failed_ += 1; }
    void recordHedgeCancelled() { hedge_cancelled_ += 1; }
    void recordHedgeWasted() { hedge_wasted_ += 1; }

    int64_t failovers() const { return failovers_; }
    int64_t hedgesLaunched() const { return hedges_launched_; }
    int64_t hedgeWins() const { return hedge_wins_; }
    int64_t hedgeLosses() const { return hedge_losses_; }
    int64_t hedgeFailed() const { return hedge_failed_; }
    /** Losing instances removed from a queue before dispatch. */
    int64_t hedgeCancelled() const { return hedge_cancelled_; }
    /** Losing instances that were already running (non-preemptive:
     *  they finish and their result is discarded). */
    int64_t hedgeWasted() const { return hedge_wasted_; }

    /** Every launched hedge resolved exactly one way. */
    bool
    hedgesReconcile() const
    {
        return hedges_launched_ ==
               hedge_wins_ + hedge_losses_ + hedge_failed_;
    }

    /** Mean lane utilization of one replica over @p horizon_s of
     *  virtual time on @p lanes lanes (0 with no horizon). */
    double
    utilization(int r, double horizon_s, int lanes) const
    {
        if (horizon_s <= 0.0 || lanes <= 0)
            return 0.0;
        return replica(r).busy_s /
               (horizon_s * static_cast<double>(lanes));
    }

    /** Max-over-mean routed instances across replicas (1.0 =
     *  perfectly even; 0 when nothing was routed). */
    double routingSkew() const;

    /** Population variance of per-replica cache hit rates. */
    double cacheHitVariance() const;

  private:
    std::vector<ReplicaUsage> usage_;
    int64_t failovers_ = 0;
    int64_t hedges_launched_ = 0;
    int64_t hedge_wins_ = 0;
    int64_t hedge_losses_ = 0;
    int64_t hedge_failed_ = 0;
    int64_t hedge_cancelled_ = 0;
    int64_t hedge_wasted_ = 0;
};

class LatencyTelemetry
{
  public:
    void record(const LatencySample &s);

    int64_t count() const { return total; }
    /** Requests that carried a deadline. */
    int64_t deadlineRequests() const { return with_deadline; }
    int64_t deadlineMisses() const { return misses; }
    /** Misses over deadline-carrying requests (0 when none). */
    double
    missRate() const
    {
        return with_deadline > 0
                   ? static_cast<double>(misses) /
                         static_cast<double>(with_deadline)
                   : 0.0;
    }

    double
    meanLatency() const
    {
        return total > 0
                   ? latency_sum_s / static_cast<double>(total)
                   : 0.0;
    }
    double maxLatency() const { return latency_max_s; }

    /**
     * Exact nearest-rank quantile: the smallest recorded latency x
     * such that at least ceil(q * n) samples are <= x. A
     * single-sample stream reports that sample for every quantile.
     * Asking an *empty* telemetry for a quantile is a caller bug
     * and panics — a silent 0.0 used to masquerade as a perfect
     * latency; use quantileIfAny() when emptiness is a legitimate
     * state. @p q must be in (0, 1].
     */
    double quantile(double q) const;

    /** quantile() for callers that may hold no samples: nullopt on
     *  an empty telemetry instead of panicking. */
    std::optional<double> quantileIfAny(double q) const;

    /** The standard p50/p95/p99 triple from one sort pass. Defined
     *  on every size — harnesses emit quantile columns
     *  unconditionally, so an empty telemetry reports all zeros
     *  (and a single sample is every quantile of its stream). */
    LatencyQuantiles quantiles() const;

    /** Per-stream queueing-delay breakdown, ascending stream id. */
    const std::map<int, StreamDelay> &
    byStream() const
    {
        return streams;
    }

    /**
     * The populated log2 latency buckets, ascending. Bucket 0
     * covers [0, 2) microseconds; bucket k >= 1 covers
     * [2^k, 2^(k+1)) microseconds.
     */
    std::vector<HistogramBin> histogram() const;

    /** Drop every sample and counter. */
    void clear();

  private:
    /** log2 bucket index of a latency (0 = below 2 us). */
    static size_t bucketOf(double latency_s);

    /** 64 log2 buckets (2 us, 4 us, ...) cover any finite latency. */
    static constexpr size_t kBuckets = 64;

    std::vector<double> latencies_s;
    int64_t bucket_counts[kBuckets] = {};
    std::map<int, StreamDelay> streams;
    int64_t total = 0;
    int64_t with_deadline = 0;
    int64_t misses = 0;
    double latency_sum_s = 0.0;
    double latency_max_s = 0.0;
};

} // namespace serve
} // namespace s2ta

#endif // S2TA_SERVE_TELEMETRY_HH
