/**
 * @file
 * Synthetic sparse operand generators.
 *
 * Microbenchmarks (paper Sec. 8.2) need operands with *exact* target
 * sparsity so that sweeps are noise-free:
 *  - unstructured: every activation row / weight column gets exactly
 *    round(len * density) non-zeros at random positions;
 *  - DBB-structured: every BZ-block gets exactly nnz non-zeros.
 * Non-zero values are uniform over [-128, 127] \ {0}.
 */

#ifndef S2TA_WORKLOAD_SPARSE_GEN_HH
#define S2TA_WORKLOAD_SPARSE_GEN_HH

#include "base/random.hh"
#include "tensor/gemm.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/**
 * GEMM with unstructured (random) sparsity at exact per-vector
 * rates.
 *
 * @param wgt_sparsity fraction of zeros in each weight column.
 * @param act_sparsity fraction of zeros in each activation row.
 */
GemmProblem makeUnstructuredGemm(int m, int k, int n,
                                 double wgt_sparsity,
                                 double act_sparsity, Rng &rng);

/**
 * GEMM with DBB-structured sparsity: every BZ-block of every weight
 * column has exactly @p wgt_nnz non-zeros, and every block of every
 * activation row exactly @p act_nnz. K must be a multiple of bz.
 */
GemmProblem makeDbbGemm(int m, int k, int n, int wgt_nnz,
                        int act_nnz, Rng &rng, int bz = 8);

/**
 * Tensor with unstructured sparsity: exactly
 * round(size * (1 - sparsity)) non-zeros overall, random positions.
 */
Int8Tensor makeUnstructuredTensor(const std::vector<int> &shape,
                                  double sparsity, Rng &rng);

/**
 * Tensor with exactly @p nnz non-zeros per BZ-block along the
 * innermost (channel) dimension; partial tail blocks of r < bz
 * elements get min(nnz, r).
 */
Int8Tensor makeDbbTensor(const std::vector<int> &shape, int nnz,
                         Rng &rng, int bz = 8);

} // namespace s2ta

#endif // S2TA_WORKLOAD_SPARSE_GEN_HH
