#include "workload/model_workloads.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "workload/sparse_gen.hh"

namespace s2ta {

namespace {

/**
 * Order-dependent mix of a value into a running seed (splitmix64
 * finalizer, the same construction PlanCache::combine uses). Local
 * so the workload layer does not depend upward on arch for a
 * two-word hash.
 */
uint64_t
mixSeed(uint64_t seed, uint64_t value)
{
    uint64_t x = seed ^ (value + 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

// Dense (8/8) entries still carry mild unstructured sparsity: real
// "dense" CNN tensors are never zero-free, and ZVCG baselines
// legitimately exploit that. Shared by buildModelWorkload and the
// distinct-sample batch generator so every sample of a batch obeys
// the same operating point.
constexpr double kDenseActSparsity = 0.35;
constexpr double kDenseWgtSparsity = 0.20;

/** One layer input with the profile's A-DBB structure. */
Int8Tensor
makeLayerInput(const std::vector<int> &shape, int act_nnz, Rng &rng)
{
    return act_nnz >= 8
               ? makeUnstructuredTensor(shape, kDenseActSparsity,
                                        rng)
               : makeDbbTensor(shape, act_nnz, rng);
}

/** Linear interpolation over layer depth, rounded to an int. */
int
interpDepth(double frac, int from, int to)
{
    return static_cast<int>(
        std::lround(from + (to - from) * frac));
}

/** Clamp an A-DBB density to what the DAP hardware supports
 *  (1..5 stages, or the 8/8 dense bypass; Sec. 6.2). */
int
clampActNnz(int nnz)
{
    if (nnz >= 6)
        return 8;
    return std::max(1, nnz);
}

} // anonymous namespace

std::vector<LayerSparsity>
sparsityProfile(const ModelSpec &spec)
{
    const int n = static_cast<int>(spec.layers.size());
    s2ta_assert(n > 0, "empty model");
    std::vector<LayerSparsity> prof(static_cast<size_t>(n));

    auto depth = [n](int i) {
        return n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
    };

    if (spec.name == "AlexNet") {
        // Table 3: W-DBB 4/8, A-DBB average 3.9/8; conv3-5 are the
        // high-sparsity layers (Fig. 12).
        for (int i = 0; i < n; ++i) {
            prof[i].wgt_nnz = (i == 0) ? 8 : 4;
            prof[i].act_nnz =
                (i == 0) ? 8 : clampActNnz(interpDepth(depth(i),
                                                       5, 3));
        }
    } else if (spec.name == "VGG-16") {
        // Table 3: W-DBB 3/8, A-DBB average 3.1/8.
        for (int i = 0; i < n; ++i) {
            prof[i].wgt_nnz = (i == 0) ? 8 : 3;
            prof[i].act_nnz =
                (i == 0) ? 8 : clampActNnz(interpDepth(depth(i),
                                                       5, 2));
        }
    } else if (spec.name == "MobileNetV1") {
        // Table 3: W-DBB 4/8, A-DBB average 4.8/8 (compact model,
        // denser activations). Depthwise weights stay dense: their
        // single-channel blocks leave nothing to bound.
        for (int i = 0; i < n; ++i) {
            const LayerKind kind = spec.layers[i].kind;
            prof[i].wgt_nnz =
                (i == 0 || kind == LayerKind::Depthwise) ? 8 : 4;
            if (i == 0) {
                prof[i].act_nnz = 8;
            } else if (kind == LayerKind::Depthwise) {
                prof[i].act_nnz = 5;
            } else {
                prof[i].act_nnz =
                    clampActNnz(interpDepth(depth(i), 5, 4));
            }
        }
    } else if (spec.name == "ResNet-50V1") {
        // Sec. 5.2: per-layer tuned density ranges from 8/8 in
        // early layers down to 2/8 towards the end; W-DBB 3/8
        // (Table 3 starred row).
        for (int i = 0; i < n; ++i) {
            prof[i].wgt_nnz = (i == 0) ? 8 : 3;
            if (i == 0) {
                prof[i].act_nnz = 8;
            } else {
                const int v = interpDepth(depth(i), 6, 2);
                prof[i].act_nnz = clampActNnz(v);
            }
        }
    } else if (spec.name == "LeNet-5") {
        // Table 3: 4/8 A-DBB with 2/8 W-DBB.
        for (int i = 0; i < n; ++i) {
            prof[i].wgt_nnz = (i == 0) ? 8 : 2;
            prof[i].act_nnz = (i == 0) ? 8 : 4;
        }
    } else {
        s2ta_fatal("no sparsity profile for model '%s'",
                   spec.name.c_str());
    }
    return prof;
}

double
averageActDensity(const ModelSpec &spec,
                  const std::vector<LayerSparsity> &profile)
{
    s2ta_assert(profile.size() == spec.layers.size(),
                "profile/model mismatch");
    double weighted = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < profile.size(); ++i) {
        const double macs = static_cast<double>(
            spec.layers[i].shape.denseMacs());
        weighted += macs * profile[i].act_nnz / 8.0;
        total += macs;
    }
    return total > 0.0 ? weighted / total : 0.0;
}

ModelWorkload
buildModelWorkload(const ModelSpec &spec, Rng &rng)
{
    return buildModelWorkload(spec, sparsityProfile(spec), rng);
}

ModelWorkload
buildModelWorkload(const ModelSpec &spec,
                   std::vector<LayerSparsity> profile, Rng &rng)
{
    s2ta_assert(profile.size() == spec.layers.size(),
                "profile size %zu != layer count %zu",
                profile.size(), spec.layers.size());

    ModelWorkload mw;
    mw.spec = spec;
    mw.profile = std::move(profile);
    mw.layers.reserve(spec.layers.size());

    for (size_t i = 0; i < spec.layers.size(); ++i) {
        const ModelLayer &ml = spec.layers[i];
        const LayerSparsity &ls = mw.profile[i];

        LayerWorkload wl;
        wl.name = ml.name;
        wl.shape = ml.shape;
        wl.act_nnz = ls.act_nnz;
        wl.wgt_nnz = ls.wgt_nnz;

        // Narrow layers (RGB stems, depthwise) physically cannot
        // exceed groupInC non-zeros per 8-block once the channel
        // segment is padded, so tighten the declared bounds to what
        // the data satisfies by construction.
        if (ml.shape.groupInC() <= 4) {
            wl.wgt_nnz = std::min(wl.wgt_nnz, 4);
            wl.act_nnz = std::min(
                wl.act_nnz, std::max(1, ml.shape.in_c));
        }

        const std::vector<int> in_shape = {ml.shape.in_h,
                                           ml.shape.in_w,
                                           ml.shape.in_c};
        wl.input = makeLayerInput(in_shape, ls.act_nnz, rng);

        const std::vector<int> w_shape = {ml.shape.kernel_h,
                                          ml.shape.kernel_w,
                                          ml.shape.groupInC(),
                                          ml.shape.out_c};
        if (ls.wgt_nnz >= 8) {
            wl.weights = makeUnstructuredTensor(
                w_shape, kDenseWgtSparsity, rng);
        } else {
            // Weight DBB blocks run along the input-channel
            // dimension (dim 2 of the tensor); generate via a
            // channel-innermost layout then transpose.
            Int8Tensor tmp = makeDbbTensor(
                {ml.shape.kernel_h, ml.shape.kernel_w,
                 ml.shape.out_c, ml.shape.groupInC()},
                ls.wgt_nnz, rng);
            wl.weights = Int8Tensor(w_shape);
            for (int ky = 0; ky < ml.shape.kernel_h; ++ky)
                for (int kx = 0; kx < ml.shape.kernel_w; ++kx)
                    for (int c = 0; c < ml.shape.groupInC(); ++c)
                        for (int oc = 0; oc < ml.shape.out_c; ++oc)
                            wl.weights(ky, kx, c, oc) =
                                tmp(ky, kx, oc, c);
        }
        mw.layers.push_back(std::move(wl));
    }
    return mw;
}

ModelWorkload
withBatch(const ModelWorkload &base, int batch)
{
    s2ta_assert(batch >= 1, "batch=%d", batch);
    if (batch == 1)
        return base;

    ModelWorkload mw;
    mw.spec = base.spec;
    mw.profile = base.profile;
    mw.layers.reserve(base.layers.size());
    for (const LayerWorkload &bl : base.layers) {
        s2ta_assert(bl.batch == 1,
                    "layer '%s' is already batched (%d)",
                    bl.name.c_str(), bl.batch);
        LayerWorkload wl;
        wl.name = bl.name;
        wl.shape = bl.shape;
        wl.batch = batch;
        wl.act_nnz = bl.act_nnz;
        wl.wgt_nnz = bl.wgt_nnz;
        wl.weights = bl.weights;

        std::vector<int> in_shape = bl.input.shape();
        in_shape.insert(in_shape.begin(), batch);
        wl.input = Int8Tensor(in_shape);
        const size_t sample_bytes =
            static_cast<size_t>(bl.input.size());
        for (int s = 0; s < batch; ++s) {
            std::memcpy(wl.input.data() +
                            static_cast<size_t>(s) * sample_bytes,
                        bl.input.data(), sample_bytes);
        }
        mw.layers.push_back(std::move(wl));
    }
    return mw;
}

ModelWorkload
withDistinctBatch(const ModelWorkload &base, int batch,
                  uint64_t seed)
{
    s2ta_assert(batch >= 1, "batch=%d", batch);
    s2ta_assert(base.profile.size() == base.layers.size(),
                "profile/layer mismatch");
    if (batch == 1)
        return base;

    // One generator stream per extra sample, seeded only by (seed,
    // sample index) and drawn in layer order — sample s of a
    // batch-2 request is bit-identical to sample s of a batch-8
    // one, and arrival order can never change content.
    std::vector<Rng> sample_rng;
    sample_rng.reserve(static_cast<size_t>(batch - 1));
    for (int s = 1; s < batch; ++s) {
        sample_rng.emplace_back(
            mixSeed(seed, static_cast<uint64_t>(s)));
    }

    ModelWorkload mw;
    mw.spec = base.spec;
    mw.profile = base.profile;
    mw.layers.reserve(base.layers.size());
    for (size_t l = 0; l < base.layers.size(); ++l) {
        const LayerWorkload &bl = base.layers[l];
        s2ta_assert(bl.batch == 1,
                    "layer '%s' is already batched (%d)",
                    bl.name.c_str(), bl.batch);
        LayerWorkload wl;
        wl.name = bl.name;
        wl.shape = bl.shape;
        wl.batch = batch;
        wl.act_nnz = bl.act_nnz;
        wl.wgt_nnz = bl.wgt_nnz;
        wl.weights = bl.weights;

        const std::vector<int> sample_shape = bl.input.shape();
        std::vector<int> in_shape = sample_shape;
        in_shape.insert(in_shape.begin(), batch);
        wl.input = Int8Tensor(in_shape);
        const size_t sample_bytes =
            static_cast<size_t>(bl.input.size());
        std::memcpy(wl.input.data(), bl.input.data(),
                    sample_bytes);
        for (int s = 1; s < batch; ++s) {
            // Same generator rule as buildModelWorkload, so every
            // sample satisfies the layer's declared bounds (narrow
            // layers satisfy their tightened bound structurally:
            // padded channel segments cap the per-block NNZ).
            const Int8Tensor t = makeLayerInput(
                sample_shape, mw.profile[l].act_nnz,
                sample_rng[static_cast<size_t>(s - 1)]);
            std::memcpy(wl.input.data() +
                            static_cast<size_t>(s) * sample_bytes,
                        t.data(), sample_bytes);
        }
        mw.layers.push_back(std::move(wl));
    }
    return mw;
}

} // namespace s2ta
