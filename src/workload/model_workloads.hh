/**
 * @file
 * Per-layer sparsity profiles for the benchmark CNNs and the
 * construction of ready-to-run LayerWorkloads (synthetic operands
 * carrying the profile's DBB structure).
 *
 * The paper tunes W-DBB density per model (excluding the first
 * layer) and A-DBB density per layer, observing that activation
 * density falls from dense in early layers to 2/8 late (Sec. 5.2,
 * Table 3). The profiles below encode those published operating
 * points; the resulting whole-model average A-DBB densities land
 * close to Table 3's reported averages.
 */

#ifndef S2TA_WORKLOAD_MODEL_WORKLOADS_HH
#define S2TA_WORKLOAD_MODEL_WORKLOADS_HH

#include "arch/accelerator.hh"
#include "base/random.hh"
#include "nn/model_zoo.hh"

namespace s2ta {

/** Sparsity operating point of one layer. */
struct LayerSparsity
{
    /** Weight DBB NNZ per 8-block (8 = dense, first layers). */
    int wgt_nnz = 4;
    /** Activation DBB NNZ per 8-block (8 = dense bypass). */
    int act_nnz = 8;
};

/**
 * The per-layer sparsity profile for one of the five zoo models
 * (matched by ModelSpec::name). Fatal for unknown models.
 */
std::vector<LayerSparsity> sparsityProfile(const ModelSpec &spec);

/** Average A-DBB density (NNZ/8) over a profile, MAC-weighted. */
double averageActDensity(const ModelSpec &spec,
                         const std::vector<LayerSparsity> &profile);

/** A model plus generated operands for every layer. */
struct ModelWorkload
{
    ModelSpec spec;
    std::vector<LayerSparsity> profile;
    std::vector<LayerWorkload> layers;
};

/**
 * Build runnable workloads for a model: synthetic operands with
 * exactly the profile's DBB structure (dense entries get mild
 * unstructured sparsity so ZVCG baselines keep their realistic
 * benefit: ~35% zero activations, ~20% zero weights).
 */
ModelWorkload buildModelWorkload(const ModelSpec &spec, Rng &rng);

/** Same, with an explicit profile override. */
ModelWorkload buildModelWorkload(const ModelSpec &spec,
                                 std::vector<LayerSparsity> profile,
                                 Rng &rng);

/**
 * Batched variant of an existing workload: every layer keeps its
 * weights and declared sparsity bounds (the deployed model is
 * unchanged) and its input is replicated @p batch times along a
 * leading batch dimension — the serving scenario of one request
 * carrying @p batch samples. Replication preserves the per-sample
 * DBB structure, so the batched workload satisfies exactly the
 * bounds the base one does. @p batch == 1 returns a plain copy.
 */
ModelWorkload withBatch(const ModelWorkload &base, int batch);

/**
 * Batched variant with *distinct* per-sample content — the real
 * serving scenario, where a request's samples are different images.
 * Every layer keeps the deployed model's weights, profile, and
 * declared sparsity bounds; its input gains a leading batch
 * dimension where sample 0 is the base input and sample s >= 1 is
 * freshly generated from an Rng seeded only by (@p seed, s) with
 * the layer's profile structure (same generator rules as
 * buildModelWorkload). Sample content is therefore a pure function
 * of (base, seed, sample index): batches of different sizes share
 * their common prefix of samples, and request arrival order can
 * never change what is served. @p batch == 1 returns a plain copy.
 */
ModelWorkload withDistinctBatch(const ModelWorkload &base,
                                int batch, uint64_t seed);

} // namespace s2ta

#endif // S2TA_WORKLOAD_MODEL_WORKLOADS_HH
