#include "workload/sparse_gen.hh"

#include <cmath>

namespace s2ta {

namespace {

/**
 * Fill @p len entries starting at @p out (stride @p stride) with
 * exactly @p nnz non-zeros at random positions.
 */
void
fillVector(int8_t *out, int len, int64_t stride, int nnz, Rng &rng)
{
    for (int e = 0; e < len; ++e)
        out[static_cast<int64_t>(e) * stride] = 0;
    for (int pos : rng.chooseK(len, nnz))
        out[static_cast<int64_t>(pos) * stride] = rng.nonZeroInt8();
}

int
nnzFor(int len, double sparsity)
{
    s2ta_assert(sparsity >= 0.0 && sparsity <= 1.0,
                "sparsity %g out of range", sparsity);
    return static_cast<int>(
        std::lround(len * (1.0 - sparsity)));
}

} // anonymous namespace

GemmProblem
makeUnstructuredGemm(int m, int k, int n, double wgt_sparsity,
                     double act_sparsity, Rng &rng)
{
    GemmProblem p(m, k, n);
    const int act_nnz = nnzFor(k, act_sparsity);
    const int wgt_nnz = nnzFor(k, wgt_sparsity);
    for (int i = 0; i < m; ++i)
        fillVector(&p.a[static_cast<size_t>(i) * k], k, 1, act_nnz,
                   rng);
    for (int j = 0; j < n; ++j)
        fillVector(&p.w[static_cast<size_t>(j)], k, n, wgt_nnz, rng);
    return p;
}

GemmProblem
makeDbbGemm(int m, int k, int n, int wgt_nnz, int act_nnz, Rng &rng,
            int bz)
{
    s2ta_assert(k % bz == 0, "K=%d vs bz=%d", k, bz);
    s2ta_assert(wgt_nnz >= 0 && wgt_nnz <= bz &&
                act_nnz >= 0 && act_nnz <= bz,
                "nnz out of range");
    GemmProblem p(m, k, n);
    for (int i = 0; i < m; ++i) {
        for (int b = 0; b < k / bz; ++b) {
            fillVector(&p.a[static_cast<size_t>(i) * k + b * bz], bz,
                       1, act_nnz, rng);
        }
    }
    for (int j = 0; j < n; ++j) {
        for (int b = 0; b < k / bz; ++b) {
            fillVector(&p.w[static_cast<size_t>(b) * bz * n + j], bz,
                       n, wgt_nnz, rng);
        }
    }
    return p;
}

Int8Tensor
makeUnstructuredTensor(const std::vector<int> &shape, double sparsity,
                       Rng &rng)
{
    Int8Tensor t(shape);
    const int64_t total = t.size();
    const int64_t nnz = std::llround(
        static_cast<double>(total) * (1.0 - sparsity));
    // Exact global count via reservoir-style selection: walk the
    // tensor once, keeping the running draw probability exact.
    int64_t remaining_slots = total;
    int64_t remaining_nnz = nnz;
    for (int64_t i = 0; i < total; ++i) {
        const double pr =
            static_cast<double>(remaining_nnz) /
            static_cast<double>(remaining_slots);
        if (remaining_nnz > 0 && rng.bernoulli(pr)) {
            t.flat(i) = rng.nonZeroInt8();
            --remaining_nnz;
        }
        --remaining_slots;
    }
    return t;
}

Int8Tensor
makeDbbTensor(const std::vector<int> &shape, int nnz, Rng &rng,
              int bz)
{
    Int8Tensor t(shape);
    const int channels = t.dim(t.rank() - 1);
    for (int64_t base = 0; base < t.size(); base += channels) {
        for (int off = 0; off < channels; off += bz) {
            const int len = std::min(bz, channels - off);
            fillVector(t.data() + base + off, len, 1,
                       std::min(nnz, len), rng);
        }
    }
    return t;
}

} // namespace s2ta
