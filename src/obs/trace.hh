/**
 * @file
 * Structured wall-clock tracing for the serving and backend layers.
 *
 * A Tracer records three kinds of events against one monotonic
 * (steady_clock) epoch: *spans* (a named duration — request
 * simulation, backend prepare/execute/wait), *instants* (a point
 * event — admit, failover, crash), and *counter samples* (a named
 * value over time — queue depth, ready-queue length). Events land
 * in fixed-capacity per-thread ring buffers: the hot path performs
 * zero allocation (category and name must be string literals; the
 * record is a POD copied into a pre-allocated slot under the ring's
 * own uncontended mutex), and a full ring overwrites its oldest
 * events rather than blocking or growing, counting the drops.
 *
 * Export produces Chrome trace-event JSON (chromeTraceJson /
 * writeChromeTrace), so a serving run opens directly in
 * chrome://tracing or Perfetto; tools/trace_summarize.py gives a
 * terminal summary of the same file.
 *
 * Two off switches, for two costs:
 *
 *  - **Runtime**: a tracer starts disabled; every hook checks one
 *    relaxed atomic and does nothing else while it stays off (the
 *    default for every bench unless --trace-out is given).
 *  - **Compile time**: building with S2TA_OBS_DISABLE (CMake
 *    -DS2TA_OBS=OFF) expands every S2TA_TRACE_* / S2TA_METRIC_*
 *    hook to nothing, so instrumented translation units carry zero
 *    observability code. The Tracer class itself stays available
 *    (an explicitly driven exporter still compiles); only the
 *    macro hooks vanish.
 *
 * Tracing is observation only: hooks never touch simulation inputs,
 * so any NetworkRun is bitwise identical with tracing on, off, or
 * compiled out (enforced by tests/obs/test_trace.cc).
 *
 * Thread-safety: emitting is safe from any number of threads
 * concurrently (each writes its own ring); snapshot/export/clear
 * are safe concurrently with emitters (they lock each ring in
 * turn). Timestamps are a per-event steady_clock read, so events
 * from different threads order correctly in the exported trace.
 */

#ifndef S2TA_OBS_TRACE_HH
#define S2TA_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace s2ta {
namespace obs {

/** One recorded event. POD: the hot path copies it into a ring
 *  slot; cat/name must point at static-storage strings. */
struct TraceEvent
{
    enum class Phase : uint8_t
    {
        /** A span: [ts_ns, ts_ns + dur_ns) ("X" in Chrome). */
        Complete,
        /** A point event ("i" in Chrome). */
        Instant,
        /** A counter sample ("C" in Chrome); value carries it. */
        Counter,
    };

    const char *cat = "";
    const char *name = "";
    Phase phase = Phase::Instant;
    /** Registration-order thread id (1-based). */
    uint32_t tid = 0;
    /** Nanoseconds since the tracer's epoch. */
    int64_t ts_ns = 0;
    /** Span duration (Complete only). */
    int64_t dur_ns = 0;
    /** Counter value, or a numeric argument (request id, replica,
     *  lane) attached to spans and instants. */
    int64_t value = 0;
};

class Tracer
{
  public:
    /** @param ring_capacity events each thread's ring holds before
     *  overwriting its oldest (rounded up to a power of two). */
    explicit Tracer(size_t ring_capacity = size_t{1} << 16);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide tracer every S2TA_TRACE_* hook records
     *  into. Intentionally leaked (atexit exporters may run after
     *  static destructors). Starts disabled. */
    static Tracer &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn recording on or off; hooks are one relaxed atomic load
     *  while off. Safe from any thread. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Monotonic nanoseconds since this tracer's construction. */
    int64_t
    nowNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    // Recording (no-ops while disabled; cat/name must be string
    // literals or otherwise outlive the tracer).
    void completeEvent(const char *cat, const char *name,
                       int64_t start_ns, int64_t dur_ns,
                       int64_t arg = 0);
    void instant(const char *cat, const char *name,
                 int64_t arg = 0);
    void counter(const char *cat, const char *name, int64_t value);

    /** Recording volume counters. */
    struct Stats
    {
        /** Events currently held across all rings. */
        int64_t recorded = 0;
        /** Events overwritten because a ring was full. */
        int64_t dropped = 0;
        /** Threads that have recorded at least one event. */
        int threads = 0;
    };
    Stats stats() const;

    /** Copy out every held event, oldest-first per thread, merged
     *  and sorted by timestamp. Safe concurrently with emitters. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop every held event (rings and thread registrations stay
     *  allocated; drop counters reset). */
    void clear();

    /** The Chrome trace-event JSON document for the current
     *  snapshot ({"traceEvents": [...]}; timestamps in us). */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to @p path; fatal on I/O error. */
    void writeChromeTrace(const std::string &path) const;

  private:
    struct ThreadBuffer;

    /** This thread's ring, registering it on first use. */
    ThreadBuffer &threadBuffer();
    void emit(const TraceEvent &ev);

    const std::chrono::steady_clock::time_point epoch_;
    const size_t ring_capacity_;
    /** Process-unique id; thread-local caches key on it so a
     *  stale cache entry can never match a new tracer. */
    const uint64_t id_;
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/**
 * RAII span: captures the start instant at construction and emits
 * one Complete event at destruction. When the tracer is disabled at
 * construction the span is inert (destruction emits nothing even if
 * tracing was enabled mid-span — a half-timed span would lie).
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer &t, const char *cat, const char *name,
              int64_t arg = 0)
    {
        if (t.enabled()) {
            tracer_ = &t;
            cat_ = cat;
            name_ = name;
            arg_ = arg;
            start_ns_ = t.nowNs();
        }
    }

    ~TraceSpan()
    {
        if (tracer_ != nullptr) {
            tracer_->completeEvent(cat_, name_, start_ns_,
                                   tracer_->nowNs() - start_ns_,
                                   arg_);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Tracer *tracer_ = nullptr;
    const char *cat_ = nullptr;
    const char *name_ = nullptr;
    int64_t arg_ = 0;
    int64_t start_ns_ = 0;
};

} // namespace obs
} // namespace s2ta

// ---- hook macros ----------------------------------------------------
//
// The only way instrumented layers should record: all of these
// compile to nothing under S2TA_OBS_DISABLE, and to one relaxed
// atomic load while the global tracer is disabled at runtime.

#ifndef S2TA_OBS_DISABLE

#define S2TA_OBS_CONCAT2(a, b) a##b
#define S2TA_OBS_CONCAT(a, b) S2TA_OBS_CONCAT2(a, b)

/** Time the enclosing scope as one span. */
#define S2TA_TRACE_SPAN(cat, name) \
    ::s2ta::obs::TraceSpan S2TA_OBS_CONCAT( \
        s2ta_trace_span_, __COUNTER__)( \
        ::s2ta::obs::Tracer::global(), cat, name)

/** Time the enclosing scope, attaching a numeric argument
 *  (request id, replica, lane). */
#define S2TA_TRACE_SPAN_ID(cat, name, id) \
    ::s2ta::obs::TraceSpan S2TA_OBS_CONCAT( \
        s2ta_trace_span_, __COUNTER__)( \
        ::s2ta::obs::Tracer::global(), cat, name, \
        static_cast<int64_t>(id))

/** Record a point event with a numeric argument. */
#define S2TA_TRACE_INSTANT(cat, name, id) \
    do { \
        ::s2ta::obs::Tracer &s2ta_obs_t_ = \
            ::s2ta::obs::Tracer::global(); \
        if (s2ta_obs_t_.enabled()) \
            s2ta_obs_t_.instant(cat, name, \
                                static_cast<int64_t>(id)); \
    } while (0)

/** Record one sample of a named counter series. */
#define S2TA_TRACE_COUNTER(cat, name, value) \
    do { \
        ::s2ta::obs::Tracer &s2ta_obs_t_ = \
            ::s2ta::obs::Tracer::global(); \
        if (s2ta_obs_t_.enabled()) \
            s2ta_obs_t_.counter(cat, name, \
                                static_cast<int64_t>(value)); \
    } while (0)

#else // S2TA_OBS_DISABLE

#define S2TA_TRACE_SPAN(cat, name) ((void)0)
#define S2TA_TRACE_SPAN_ID(cat, name, id) ((void)0)
#define S2TA_TRACE_INSTANT(cat, name, id) ((void)0)
#define S2TA_TRACE_COUNTER(cat, name, value) ((void)0)

#endif // S2TA_OBS_DISABLE

#endif // S2TA_OBS_TRACE_HH
