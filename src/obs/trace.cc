#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "base/logging.hh"

namespace s2ta {
namespace obs {

namespace {

/** Smallest power of two >= n (and >= 2, so the ring is never
 *  degenerate). */
size_t
roundUpPow2(size_t n)
{
    size_t cap = 2;
    while (cap < n)
        cap <<= 1;
    return cap;
}

std::atomic<uint64_t> next_tracer_id{1};

} // namespace

/**
 * One thread's event storage: a fixed vector written modulo its
 * capacity under its own mutex. Only the owning thread writes;
 * snapshot/clear/stats lock the same mutex from other threads, so
 * the common case (no export in flight) is an uncontended lock.
 */
struct Tracer::ThreadBuffer
{
    ThreadBuffer(uint32_t tid, size_t capacity)
        : tid(tid), ring(capacity)
    {
    }

    const uint32_t tid;
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    /** Total events ever written; the ring holds the last
     *  min(head, ring.size()) of them. */
    uint64_t head = 0;
};

Tracer::Tracer(size_t ring_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(roundUpPow2(ring_capacity)),
      id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer::~Tracer() = default;

Tracer &
Tracer::global()
{
    // Leaked: bench atexit exporters run after static destructors.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    struct CacheEntry
    {
        uint64_t tracer_id;
        ThreadBuffer *buffer;
    };
    // Keyed by process-unique tracer id: an entry for a destroyed
    // tracer can never be matched again, so stale pointers are
    // inert. A thread touches at most a handful of tracers (the
    // global one plus test-local instances).
    thread_local std::vector<CacheEntry> cache;
    for (const CacheEntry &e : cache) {
        if (e.tracer_id == id_)
            return *e.buffer;
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<ThreadBuffer>(
        static_cast<uint32_t>(buffers_.size() + 1), ring_capacity_);
    ThreadBuffer *raw = buffer.get();
    buffers_.push_back(std::move(buffer));
    cache.push_back({id_, raw});
    return *raw;
}

void
Tracer::emit(const TraceEvent &ev)
{
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.ring[buf.head & (buf.ring.size() - 1)] = ev;
    ++buf.head;
}

void
Tracer::completeEvent(const char *cat, const char *name,
                      int64_t start_ns, int64_t dur_ns, int64_t arg)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.phase = TraceEvent::Phase::Complete;
    ev.ts_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.value = arg;
    emit(ev);
}

void
Tracer::instant(const char *cat, const char *name, int64_t arg)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.phase = TraceEvent::Phase::Instant;
    ev.ts_ns = nowNs();
    ev.value = arg;
    emit(ev);
}

void
Tracer::counter(const char *cat, const char *name, int64_t value)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.phase = TraceEvent::Phase::Counter;
    ev.ts_ns = nowNs();
    ev.value = value;
    emit(ev);
}

Tracer::Stats
Tracer::stats() const
{
    Stats s;
    std::lock_guard<std::mutex> lock(mu_);
    s.threads = static_cast<int>(buffers_.size());
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        const uint64_t held =
            std::min<uint64_t>(buf->head, buf->ring.size());
        s.recorded += static_cast<int64_t>(held);
        s.dropped += static_cast<int64_t>(buf->head - held);
    }
    return s;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> buf_lock(buf->mu);
            const size_t cap = buf->ring.size();
            const uint64_t held = std::min<uint64_t>(buf->head, cap);
            for (uint64_t i = buf->head - held; i < buf->head; ++i) {
                TraceEvent ev = buf->ring[i & (cap - 1)];
                ev.tid = buf->tid;
                events.push_back(ev);
            }
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return events;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->head = 0;
    }
}

namespace {

/** Append ns as a microsecond decimal ("1234.567") — Chrome's ts
 *  unit is us, but viewers keep sub-us precision via fractions. */
void
appendMicros(std::string &out, int64_t ns)
{
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += tmp;
}

} // namespace

std::string
Tracer::chromeTraceJson() const
{
    const std::vector<TraceEvent> events = snapshot();
    std::string out;
    out.reserve(events.size() * 96 + 64);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"pid\":1,\"tid\":";
        out += std::to_string(ev.tid);
        out += ",\"cat\":\"";
        out += ev.cat;
        out += "\",\"name\":\"";
        out += ev.name;
        out += "\",\"ts\":";
        appendMicros(out, ev.ts_ns);
        switch (ev.phase) {
          case TraceEvent::Phase::Complete:
            out += ",\"ph\":\"X\",\"dur\":";
            appendMicros(out, ev.dur_ns);
            out += ",\"args\":{\"id\":";
            out += std::to_string(ev.value);
            out += "}";
            break;
          case TraceEvent::Phase::Instant:
            // Thread-scoped instant.
            out += ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"id\":";
            out += std::to_string(ev.value);
            out += "}";
            break;
          case TraceEvent::Phase::Counter:
            out += ",\"ph\":\"C\",\"args\":{\"value\":";
            out += std::to_string(ev.value);
            out += "}";
            break;
        }
        out += "}";
    }
    out += "]}";
    return out;
}

void
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        s2ta_fatal("cannot open trace output '%s'", path.c_str());
    const std::string doc = chromeTraceJson();
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.close();
    if (!out)
        s2ta_fatal("failed writing trace output '%s'", path.c_str());
}

} // namespace obs
} // namespace s2ta
