#include "obs/metrics.hh"

#include <cmath>
#include <fstream>

#include "base/logging.hh"

namespace s2ta {
namespace obs {

namespace {

/** log2 bucket index, telemetry shape: 0 = below 2 in the
 *  caller's unit, k = [2^k, 2^(k+1)). */
int
bucketOf(double v)
{
    if (v < 2.0)
        return 0;
    const int k = static_cast<int>(std::floor(std::log2(v)));
    return std::min(k, Histogram::kBuckets - 1);
}

} // namespace

void
Histogram::record(double v)
{
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // No fetch_add for atomic<double> pre-C++20 libstdc++; CAS.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<Histogram::Bin>
Histogram::bins() const
{
    std::vector<Bin> out;
    for (int k = 0; k < kBuckets; ++k) {
        const int64_t n =
            buckets_[k].load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        Bin bin;
        bin.lo = k == 0 ? 0.0 : std::ldexp(1.0, k);
        bin.hi = std::ldexp(1.0, k + 1);
        bin.count = n;
        out.push_back(bin);
    }
    return out;
}

void
Histogram::reset()
{
    for (int k = 0; k < kBuckets; ++k)
        buckets_[k].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked, like Tracer::global(): atexit snapshot writers in the
    // bench harness may run after static destructors.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace {

/** Format a double the way the JSON snapshot wants it: shortest
 *  round-trippable representation printf gives us. */
std::string
formatDouble(double v)
{
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.17g", v);
    return tmp;
}

} // namespace

std::string
MetricsRegistry::snapshotText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto &[name, c] : counters_) {
        out += name;
        out += " ";
        out += std::to_string(c->value());
        out += "\n";
    }
    for (const auto &[name, g] : gauges_) {
        out += name;
        out += " ";
        out += formatDouble(g->value());
        out += "\n";
    }
    for (const auto &[name, h] : histograms_) {
        out += name;
        out += " count=";
        out += std::to_string(h->count());
        out += " sum=";
        out += formatDouble(h->sum());
        for (const Histogram::Bin &bin : h->bins()) {
            out += " [";
            out += formatDouble(bin.lo);
            out += ",";
            out += formatDouble(bin.hi);
            out += ")=";
            out += std::to_string(bin.count);
        }
        out += "\n";
    }
    return out;
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + name + "\":" + std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + name + "\":" + formatDouble(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + name + "\":{\"count\":" +
               std::to_string(h->count()) +
               ",\"sum\":" + formatDouble(h->sum()) + ",\"bins\":[";
        bool first_bin = true;
        for (const Histogram::Bin &bin : h->bins()) {
            if (!first_bin)
                out += ",";
            first_bin = false;
            out += "[" + formatDouble(bin.lo) + "," +
                   formatDouble(bin.hi) + "," +
                   std::to_string(bin.count) + "]";
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        s2ta_fatal("cannot open metrics output '%s'", path.c_str());
    const std::string doc = snapshotJson();
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.close();
    if (!out)
        s2ta_fatal("failed writing metrics output '%s'",
                   path.c_str());
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        c->reset();
    for (const auto &[name, g] : gauges_)
        g->reset();
    for (const auto &[name, h] : histograms_)
        h->reset();
}

} // namespace obs
} // namespace s2ta
