/**
 * @file
 * Process-wide named metrics: counters, gauges, and log2 histograms.
 *
 * MetricsRegistry complements the Tracer (obs/trace.hh): where the
 * tracer answers "what happened when", the registry answers "how
 * much, in total" — cumulative counts (plan-cache hits, requests
 * shed), last-value gauges (time-scale factors, queue high-water
 * marks), and value distributions (per-request latencies) that
 * survive the whole process and dump as one text or JSON snapshot.
 *
 * Instruments are created on first use by name and live for the
 * registry's lifetime, so hooks cache the returned reference once
 * (`static Counter &c = MetricsRegistry::global().counter(...)`)
 * and updates are a single relaxed atomic op — safe and cheap from
 * any thread, including simulation hot paths. The S2TA_METRIC_*
 * macros below do exactly that, and compile to nothing under
 * S2TA_OBS_DISABLE just like the trace hooks.
 *
 * Naming convention: lowercase dotted `<layer>.<what>[_<unit>]` —
 * e.g. `plan_cache.hits`, `backend.h2d_bytes`, `serve.shed`,
 * `replay.latency_us`. The layer prefix groups related metrics in
 * snapshots; units are spelled out in the suffix when the value is
 * not a plain count.
 *
 * Histogram reuses the bucketing of LatencyTelemetry::histogram()
 * (src/serve/telemetry.hh): 64 log2 buckets where bucket 0 covers
 * [0, 2) and bucket k covers [2^k, 2^(k+1)) in the caller's unit.
 */

#ifndef S2TA_OBS_METRICS_HH
#define S2TA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace s2ta {
namespace obs {

/** Monotonically increasing count. */
class Counter
{
  public:
    void
    add(int64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-written value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        set(0.0);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution of non-negative values over 64 log2 buckets
 * (telemetry shape: bucket 0 = [0, 2), bucket k = [2^k, 2^(k+1))).
 * Units are the caller's; negative values clamp into bucket 0.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void record(double v);

    int64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** One populated bucket: count of values in [lo, hi). */
    struct Bin
    {
        double lo = 0.0;
        double hi = 0.0;
        int64_t count = 0;
    };

    /** Populated buckets in ascending value order. */
    std::vector<Bin> bins() const;

    void reset();

  private:
    std::atomic<int64_t> buckets_[kBuckets] = {};
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Name -> instrument map. Lookups take a mutex; the returned
 * references stay valid and lock-free to update for the registry's
 * lifetime. A name is per-kind: "x" may exist as both a counter
 * and a gauge (snapshots section by kind, so they cannot collide).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry the S2TA_METRIC_* hooks update.
     *  Intentionally leaked, like Tracer::global(). */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Human-readable snapshot: one `name value` line per
     *  instrument, sectioned and sorted by name. */
    std::string snapshotText() const;

    /** JSON snapshot: {"counters": {...}, "gauges": {...},
     *  "histograms": {name: {count, sum, bins: [[lo,hi,n],...]}}}. */
    std::string snapshotJson() const;

    /** Write snapshotJson() to @p path; fatal on I/O error. */
    void writeJson(const std::string &path) const;

    /** Zero every instrument; handles stay valid. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace s2ta

// ---- hook macros ----------------------------------------------------
//
// Cached-reference updates against MetricsRegistry::global(); the
// name must be a string literal. Compiled away with the trace hooks
// under S2TA_OBS_DISABLE.

#ifndef S2TA_OBS_DISABLE

/** Add @p n to the global counter @p name. */
#define S2TA_METRIC_ADD(name, n) \
    do { \
        static ::s2ta::obs::Counter &s2ta_obs_c_ = \
            ::s2ta::obs::MetricsRegistry::global().counter(name); \
        s2ta_obs_c_.add(static_cast<int64_t>(n)); \
    } while (0)

/** Increment the global counter @p name. */
#define S2TA_METRIC_INC(name) S2TA_METRIC_ADD(name, 1)

/** Set the global gauge @p name. */
#define S2TA_METRIC_SET(name, v) \
    do { \
        static ::s2ta::obs::Gauge &s2ta_obs_g_ = \
            ::s2ta::obs::MetricsRegistry::global().gauge(name); \
        s2ta_obs_g_.set(static_cast<double>(v)); \
    } while (0)

/** Record @p v into the global histogram @p name. */
#define S2TA_METRIC_RECORD(name, v) \
    do { \
        static ::s2ta::obs::Histogram &s2ta_obs_h_ = \
            ::s2ta::obs::MetricsRegistry::global().histogram(name); \
        s2ta_obs_h_.record(static_cast<double>(v)); \
    } while (0)

#else // S2TA_OBS_DISABLE

#define S2TA_METRIC_ADD(name, n) ((void)0)
#define S2TA_METRIC_INC(name) ((void)0)
#define S2TA_METRIC_SET(name, v) ((void)0)
#define S2TA_METRIC_RECORD(name, v) ((void)0)

#endif // S2TA_OBS_DISABLE

#endif // S2TA_OBS_METRICS_HH
