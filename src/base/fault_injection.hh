/**
 * @file
 * Deterministic, seeded fault-injection harness.
 *
 * Robustness claims are only testable if faults can be reproduced:
 * a fault that depends on wall-clock timing, thread interleaving,
 * or a global RNG stream makes every failure a heisenbug. This
 * harness therefore makes every injection decision a *pure
 * function* of (seed, site, identity):
 *
 *  - a **site** names the code path being perturbed (a plan-store
 *    read, a spill-tier decode, one layer of one request's
 *    execution);
 *  - the **identity** is a stable 64-bit id of the operation the
 *    caller supplies (a store key, a (request id, attempt, layer)
 *    combination) — never a call counter, whose value would depend
 *    on thread interleaving;
 *  - the decision hashes (seed, site, identity) and compares
 *    against the site's configured rate.
 *
 * Consequences: the same seed injects the same fault set at every
 * thread count and on every rerun; a retried operation with a new
 * attempt number re-rolls independently (transient faults); and a
 * repeated operation with the *same* identity fails the same way
 * every time (persistent faults, e.g. a store file whose reads
 * always fail). Callers choose which behavior they model by what
 * they fold into the identity.
 *
 * Per-site evaluated/injected counters (relaxed atomics — totals
 * are exact, only the increment order is interleaving-dependent)
 * let harnesses reconcile observed failure counts against the
 * injection plan exactly: every injected fault must surface as a
 * counted degradation somewhere, or the recovery path is lying.
 *
 * An unconfigured injector (all rates zero) never fires; production
 * paths take a null injector pointer and skip evaluation entirely.
 */

#ifndef S2TA_BASE_FAULT_INJECTION_HH
#define S2TA_BASE_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>

#include "base/logging.hh"

namespace s2ta {

/** Named injection sites threaded through the stack. */
enum class FaultSite : int
{
    /** PlanStore::load: the open/map fails (plain miss). */
    StoreRead = 0,
    /** PlanStore::save: the image write tears mid-file (an
     *  unpublished temp is left behind; no entry becomes visible). */
    StoreWrite,
    /** PlanStore::save: the publishing rename fails. */
    StoreRename,
    /** PlanStore::load: one payload bit flips in the mapped image
     *  (tripping the checksum -> rejection + quarantine). */
    StoreBitFlip,
    /** PlanCache spill tier: an evicted entry's compact encode
     *  fails (the entry is dropped instead of parked). */
    SpillEncode,
    /** PlanCache spill tier: a parked image's decode fails (the
     *  image is dropped; the lookup degrades to store/cold). */
    SpillDecode,
    /** Accelerator: a transient per-layer compute fault kills the
     *  whole attempt (results are discarded, never corrupted). */
    LayerCompute,
    /** Accelerator: a modeled per-layer stall adds virtual-time
     *  cycles without touching any simulation result. */
    LayerStall,
    /** Fleet: a whole replica crashes — every queued and running
     *  request instance on it is lost and must fail over. */
    ReplicaCrash,
    /** Fleet: a replica browns out — it keeps serving, but every
     *  request dispatched while stalled runs slower (timing only,
     *  results untouched). */
    ReplicaStall,
    /** Fleet: a crashed replica restarts (cold lanes, warm plans
     *  via its PlanCache over the shared PlanStore). */
    ReplicaRestart,
};

constexpr int kFaultSiteCount = 11;

/** Human-readable site name for logs and artifacts. */
const char *faultSiteName(FaultSite site);

class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed) : seed_(seed) {}

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Injection probability for @p site, in [0, 1] (default 0). */
    void setRate(FaultSite site, double rate);

    /** Stall magnitude bounds (cycles) for LayerStall injections. */
    void setStallCycles(int64_t lo, int64_t hi);

    /**
     * Decide whether the operation identified by @p identity faults
     * at @p site: a pure function of (seed, site, identity), so the
     * decision is identical at every thread count and on every
     * rerun. Counts one evaluation (and one injection when true).
     */
    bool shouldFail(FaultSite site, uint64_t identity) const;

    /**
     * Stall cycles injected into the operation identified by
     * @p identity (0 when the LayerStall site does not fire).
     * Magnitude is drawn deterministically from the configured
     * [lo, hi] range.
     */
    int64_t stallCycles(uint64_t identity) const;

    /** Exact per-site counters (totals; order is unspecified). */
    struct SiteStats
    {
        int64_t evaluated = 0;
        int64_t injected = 0;
    };

    SiteStats stats(FaultSite site) const;
    int64_t injected(FaultSite site) const;
    int64_t evaluated(FaultSite site) const;

    uint64_t seed() const { return seed_; }

    /** Order-dependent mix of two ids into one (splitmix64-style);
     *  callers build composite identities with it, e.g.
     *  combineId(request_id, attempt). */
    static uint64_t combineId(uint64_t a, uint64_t b);

  private:
    /** The decision hash behind shouldFail (pure function). */
    uint64_t mix(FaultSite site, uint64_t identity) const;

    const uint64_t seed_;
    double rates_[kFaultSiteCount] = {};
    int64_t stall_lo = 256;
    int64_t stall_hi = 4096;
    mutable std::atomic<int64_t> evaluated_[kFaultSiteCount] = {};
    mutable std::atomic<int64_t> injected_[kFaultSiteCount] = {};
};

} // namespace s2ta

#endif // S2TA_BASE_FAULT_INJECTION_HH
