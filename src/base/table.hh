/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses to emit
 * the rows/series the paper's tables and figures report.
 */

#ifndef S2TA_BASE_TABLE_HH
#define S2TA_BASE_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace s2ta {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Design", "Speedup", "Energy"});
 *   t.addRow({"SA-ZVCG", Table::num(1.0), Table::num(1.0)});
 *   t.print(stdout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header,
                   std::string title = "");

    /** Append a data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string count(int64_t v);

    /** Format a ratio as "N.NNx". */
    static std::string ratio(double v, int precision = 2);

    /** Format a percentage as "NN.N%". */
    static std::string percent(double frac, int precision = 1);

    /** Render the table to a stream. */
    void print(std::FILE *out = stdout) const;

  private:
    std::string title;
    std::vector<std::string> header;
    /** A row; empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows;
};

} // namespace s2ta

#endif // S2TA_BASE_TABLE_HH
