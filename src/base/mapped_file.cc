#include "base/mapped_file.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define S2TA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace s2ta {

MappedFile
MappedFile::openRead(const std::string &path)
{
    MappedFile mf;
#ifdef S2TA_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return mf;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return mf;
    }
    mf.map_len = static_cast<size_t>(st.st_size);
    if (mf.map_len == 0) {
        // A zero-length file maps to nothing but is a readable
        // (and rejectable) artifact, e.g. a torn store entry.
        ::close(fd);
        mf.is_valid = true;
        return mf;
    }
    void *addr =
        ::mmap(nullptr, mf.map_len, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping outlives the descriptor.
    ::close(fd);
    if (addr == MAP_FAILED) {
        mf.map_len = 0;
        return mf;
    }
    mf.map_addr = addr;
    mf.is_valid = true;
    return mf;
#else
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return mf;
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len < 0) {
        std::fclose(f);
        return mf;
    }
    mf.fallback.resize(static_cast<size_t>(len));
    if (len > 0 &&
        std::fread(mf.fallback.data(), 1, mf.fallback.size(), f) !=
            mf.fallback.size()) {
        std::fclose(f);
        mf.fallback.clear();
        return mf;
    }
    std::fclose(f);
    mf.map_len = static_cast<size_t>(len);
    mf.is_valid = true;
    return mf;
#endif
}

void
MappedFile::reset()
{
#ifdef S2TA_HAVE_MMAP
    if (map_addr != nullptr)
        ::munmap(map_addr, map_len);
#endif
    map_addr = nullptr;
    map_len = 0;
    fallback.clear();
    is_valid = false;
}

bool
writeFileAtomic(const std::string &path, const void *data,
                size_t len)
{
    // Temp file in the same directory so the rename cannot cross a
    // filesystem boundary; the PID + per-process counter suffix
    // keeps concurrent writers of the same path — other processes
    // *and* other threads of this one — from clobbering each
    // other's temp bytes.
    static std::atomic<uint64_t> write_seq{0};
    const uint64_t seq =
        write_seq.fetch_add(1, std::memory_order_relaxed);
#ifdef S2TA_HAVE_MMAP
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seq);
#else
    const std::string tmp =
        path + ".tmp." + std::to_string(seq);
#endif
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool wrote =
        len == 0 || std::fwrite(data, 1, len, f) == len;
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote || !flushed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
makeDirs(const std::string &path)
{
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    return !ec && std::filesystem::is_directory(path, ec);
}

} // namespace s2ta
