/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library (workload generators,
 * synthetic datasets, weight initialization) draws from an explicitly
 * seeded Rng so that experiments are bit-reproducible run to run.
 */

#ifndef S2TA_BASE_RANDOM_HH
#define S2TA_BASE_RANDOM_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "base/logging.hh"

namespace s2ta {

/**
 * Seeded pseudo-random source with convenience draws.
 *
 * Thin wrapper over std::mt19937_64; cheap to copy so a component can
 * fork an independent stream from a parent seed.
 */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(uint64_t seed = 0x5312A0ull) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        s2ta_assert(lo <= hi, "bad range [%ld, %ld]", lo, hi);
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Gaussian draw with the given mean and standard deviation. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Bernoulli draw: true with probability p. */
    bool
    bernoulli(double p)
    {
        s2ta_assert(p >= 0.0 && p <= 1.0, "p=%g out of range", p);
        return std::bernoulli_distribution(p)(engine);
    }

    /** Non-zero INT8 value, uniform over [-128, 127] \ {0}. */
    int8_t
    nonZeroInt8()
    {
        int64_t v = uniformInt(-128, 126);
        return static_cast<int8_t>(v >= 0 ? v + 1 : v);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine);
    }

    /**
     * Choose k distinct indices from [0, n) uniformly at random.
     * @return sorted index vector of size k.
     */
    std::vector<int>
    chooseK(int n, int k)
    {
        s2ta_assert(k >= 0 && k <= n, "chooseK(%d, %d)", n, k);
        std::vector<int> idx(n);
        for (int i = 0; i < n; ++i)
            idx[i] = i;
        // Partial Fisher-Yates: only the first k draws are needed.
        for (int i = 0; i < k; ++i) {
            int j = static_cast<int>(uniformInt(i, n - 1));
            std::swap(idx[i], idx[j]);
        }
        idx.resize(k);
        std::sort(idx.begin(), idx.end());
        return idx;
    }

    /** Fork an independent child stream. */
    Rng
    fork()
    {
        return Rng(engine());
    }

    /** Access the underlying engine (for std::shuffle et al.). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace s2ta

#endif // S2TA_BASE_RANDOM_HH
