/**
 * @file
 * Read-only memory-mapped file plus the atomic-write primitives the
 * persistent plan store is built on.
 *
 * MappedFile maps a whole file into the address space (mmap on
 * POSIX; a buffered read fallback elsewhere), so hydrating a
 * serialized plan is section memcpys out of the page cache instead
 * of a parse — repeated bench invocations touch the same pages and
 * the kernel shares them across concurrent readers for free. The
 * mapping is immutable (PROT_READ) and private; writers never
 * mutate a published file in place, they replace it whole via
 * writeFileAtomic (temp file + rename), which POSIX guarantees is
 * atomic with respect to concurrent openers: a reader maps either
 * the old bytes or the new bytes, never a mix. Torn writes from a
 * crashed process are left as unpublished "*.tmp.<pid>" files,
 * which PlanStore's constructor sweeps from its directory.
 */

#ifndef S2TA_BASE_MAPPED_FILE_HH
#define S2TA_BASE_MAPPED_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace s2ta {

class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { reset(); }

    MappedFile(MappedFile &&o) noexcept { *this = std::move(o); }

    MappedFile &
    operator=(MappedFile &&o) noexcept
    {
        if (this != &o) {
            reset();
            map_addr = o.map_addr;
            map_len = o.map_len;
            fallback = std::move(o.fallback);
            is_valid = o.is_valid;
            o.map_addr = nullptr;
            o.map_len = 0;
            o.is_valid = false;
        }
        return *this;
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. Returns an invalid MappedFile (no
     * error raised) when the file does not exist, cannot be opened,
     * or cannot be mapped — absence and unreadability are ordinary
     * cache-miss conditions for the plan store, not faults.
     */
    static MappedFile openRead(const std::string &path);

    bool valid() const { return is_valid; }

    const uint8_t *
    data() const
    {
        return map_addr != nullptr
                   ? static_cast<const uint8_t *>(map_addr)
                   : fallback.data();
    }

    size_t size() const { return map_len; }

  private:
    void reset();

    void *map_addr = nullptr;
    size_t map_len = 0;
    /** Buffered contents when mmap is unavailable. */
    std::vector<uint8_t> fallback;
    bool is_valid = false;
};

/**
 * Write @p len bytes to @p path atomically: the bytes land in a
 * same-directory temp file first and are published with rename(2),
 * so a concurrent MappedFile::openRead sees either the complete old
 * file or the complete new one. Returns false (never fatal) on any
 * I/O failure — the plan store treats an unsaved plan as a future
 * cold encode, not an error.
 */
bool writeFileAtomic(const std::string &path, const void *data,
                     size_t len);

/** mkdir -p. Returns false on failure (existing dir is success). */
bool makeDirs(const std::string &path);

} // namespace s2ta

#endif // S2TA_BASE_MAPPED_FILE_HH
