/**
 * @file
 * Bit-manipulation helpers for DBB positional bitmasks.
 *
 * A DBB block of size BZ <= 8 carries an 8-bit mask M where bit i set
 * means "the element at expanded position i is (stored as) non-zero"
 * (paper Fig. 5). Bit 0 corresponds to the first element in the block.
 */

#ifndef S2TA_BASE_BITMASK_HH
#define S2TA_BASE_BITMASK_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "base/logging.hh"

namespace s2ta {

/** Positional bitmask type for blocks of up to 8 elements. */
using Mask8 = uint8_t;

namespace detail {

/**
 * 256-entry popcount table. An 8-bit mask domain makes the table
 * L1-resident (256 bytes), and the lookup beats the libgcc software
 * popcount emitted when the build does not enable a hardware
 * POPCNT instruction.
 */
alignas(64) inline constexpr auto mask_popcount_table = [] {
    std::array<uint8_t, 256> t{};
    for (unsigned i = 0; i < 256; ++i)
        t[i] = static_cast<uint8_t>(std::popcount(i));
    return t;
}();

} // namespace detail

/** Number of set bits in the mask. */
inline int
maskPopcount(Mask8 m)
{
#ifdef __POPCNT__
    return std::popcount(static_cast<unsigned>(m));
#else
    return detail::mask_popcount_table[m];
#endif
}

/** True if position i (0-based) is set. */
inline bool
maskTest(Mask8 m, int i)
{
    s2ta_assert(i >= 0 && i < 8, "bit index %d", i);
    return (m >> i) & 1u;
}

/** Return the mask with position i set. */
inline Mask8
maskSet(Mask8 m, int i)
{
    s2ta_assert(i >= 0 && i < 8, "bit index %d", i);
    return static_cast<Mask8>(m | (1u << i));
}

/**
 * Rank of a set position: how many set bits strictly precede bit i.
 *
 * This is exactly the compressed-storage slot of the element at
 * expanded position i, and is what the DP1M4 / DP4M8 muxes compute in
 * hardware to steer a compressed operand to a MAC.
 */
inline int
maskRank(Mask8 m, int i)
{
    s2ta_assert(maskTest(m, i), "rank of unset bit %d in mask %02x",
                i, m);
    return std::popcount(static_cast<unsigned>(m & ((1u << i) - 1u)));
}

/**
 * Position (0-based, from LSB) of the n-th set bit, n in
 * [0, popcount). The inverse of maskRank.
 */
inline int
maskNthSetBit(Mask8 m, int n)
{
    s2ta_assert(n >= 0 && n < maskPopcount(m),
                "nth=%d of mask %02x", n, m);
    for (int i = 0; i < 8; ++i) {
        if ((m >> i) & 1u) {
            if (n == 0)
                return i;
            --n;
        }
    }
    s2ta_panic("unreachable");
}

/**
 * Intersection of two positional masks: bit i set iff both operands
 * hold a non-zero at expanded position i. This single AND replaces
 * the per-element match loop of a naive simulator; popcount of the
 * result is the matched-MAC count of the block pair (paper Sec. 5.2).
 */
inline Mask8
maskAnd(Mask8 a, Mask8 b)
{
    return static_cast<Mask8>(a & b);
}

/**
 * Unchecked rank for hot kernels: set bits of @p m strictly below
 * position i. Unlike maskRank, bit i need not be set and no argument
 * validation is performed; callers must guarantee 0 <= i < 8.
 */
inline int
maskRankUnchecked(Mask8 m, int i)
{
#ifdef __POPCNT__
    return std::popcount(
        static_cast<unsigned>(m & ((1u << i) - 1u)));
#else
    return detail::mask_popcount_table[m & ((1u << i) - 1u)];
#endif
}

/** Position of the lowest set bit; @p m must be non-zero. */
inline int
maskLowestSetBit(Mask8 m)
{
    return std::countr_zero(static_cast<unsigned>(m));
}

/** Clear the lowest set bit (Kernighan step). */
inline Mask8
maskClearLowest(Mask8 m)
{
    return static_cast<Mask8>(m & (m - 1u));
}

/** Render as Verilog-style literal, e.g. 8'h4D (paper Fig. 8). */
inline std::string
maskToString(Mask8 m)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "8'h%02X", m);
    return std::string(buf);
}

} // namespace s2ta

#endif // S2TA_BASE_BITMASK_HH
