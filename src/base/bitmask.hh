/**
 * @file
 * Bit-manipulation helpers for DBB positional bitmasks.
 *
 * A DBB block of size BZ <= 8 carries an 8-bit mask M where bit i set
 * means "the element at expanded position i is (stored as) non-zero"
 * (paper Fig. 5). Bit 0 corresponds to the first element in the block.
 */

#ifndef S2TA_BASE_BITMASK_HH
#define S2TA_BASE_BITMASK_HH

#include <bit>
#include <cstdint>
#include <string>

#include "base/logging.hh"

namespace s2ta {

/** Positional bitmask type for blocks of up to 8 elements. */
using Mask8 = uint8_t;

/** Number of set bits in the mask. */
inline int
maskPopcount(Mask8 m)
{
    return std::popcount(static_cast<unsigned>(m));
}

/** True if position i (0-based) is set. */
inline bool
maskTest(Mask8 m, int i)
{
    s2ta_assert(i >= 0 && i < 8, "bit index %d", i);
    return (m >> i) & 1u;
}

/** Return the mask with position i set. */
inline Mask8
maskSet(Mask8 m, int i)
{
    s2ta_assert(i >= 0 && i < 8, "bit index %d", i);
    return static_cast<Mask8>(m | (1u << i));
}

/**
 * Rank of a set position: how many set bits strictly precede bit i.
 *
 * This is exactly the compressed-storage slot of the element at
 * expanded position i, and is what the DP1M4 / DP4M8 muxes compute in
 * hardware to steer a compressed operand to a MAC.
 */
inline int
maskRank(Mask8 m, int i)
{
    s2ta_assert(maskTest(m, i), "rank of unset bit %d in mask %02x",
                i, m);
    return std::popcount(static_cast<unsigned>(m & ((1u << i) - 1u)));
}

/**
 * Position (0-based, from LSB) of the n-th set bit, n in
 * [0, popcount). The inverse of maskRank.
 */
inline int
maskNthSetBit(Mask8 m, int n)
{
    s2ta_assert(n >= 0 && n < maskPopcount(m),
                "nth=%d of mask %02x", n, m);
    for (int i = 0; i < 8; ++i) {
        if ((m >> i) & 1u) {
            if (n == 0)
                return i;
            --n;
        }
    }
    s2ta_panic("unreachable");
}

/** Render as Verilog-style literal, e.g. 8'h4D (paper Fig. 8). */
inline std::string
maskToString(Mask8 m)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "8'h%02X", m);
    return std::string(buf);
}

} // namespace s2ta

#endif // S2TA_BASE_BITMASK_HH
