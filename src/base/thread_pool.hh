/**
 * @file
 * Fixed-size thread pool behind every parallel tier of the
 * simulator: the layer/group fan-out of Accelerator::runNetwork,
 * the intra-GEMM tile-stripe sharding of dbbGemm
 * (RunOptions::shard_pool), and the request-level fan-out of
 * serve::StreamScheduler.
 *
 * parallelFor(n, fn) runs fn(i) for i in [0, n). Indices are handed
 * out through a shared atomic counter (no work stealing, no
 * per-worker deques); the calling thread participates, and the call
 * returns only when every index has completed. Determinism comes
 * from the usage pattern, not the schedule: callers write result i
 * into slot i and reduce sequentially afterwards, so outcomes are
 * bitwise identical to a serial loop no matter how indices
 * interleave across workers.
 *
 * Jobs are published as shared_ptrs, so completion waits only on
 * lanes that actually claimed work — a worker that wakes late finds
 * the counter exhausted and goes back to sleep without gating the
 * caller (important when n is much smaller than the pool).
 *
 * Nested parallelFor calls from inside a worker (or from the
 * caller's own lane) run inline (no new threads, no deadlock), so
 * e.g. per-group parallelism inside a layer composes with per-layer
 * parallelism across a network.
 */

#ifndef S2TA_BASE_THREAD_POOL_HH
#define S2TA_BASE_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/logging.hh"

namespace s2ta {

class ThreadPool
{
  public:
    /**
     * @param workers helper threads to spawn; 0 means
     *        hardware_concurrency() - 1 (the caller thread is the
     *        remaining lane). A pool with zero helpers degrades to
     *        serial inline execution.
     */
    explicit ThreadPool(int workers = 0)
    {
        if (workers == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            workers = hw > 1 ? static_cast<int>(hw) - 1 : 0;
        }
        s2ta_assert(workers >= 0, "negative worker count %d",
                    workers);
        threads.reserve(static_cast<size_t>(workers));
        for (int t = 0; t < workers; ++t)
            threads.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
        }
        wake_cv.notify_all();
        for (std::thread &t : threads)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Helper threads (excluding the caller). */
    int workers() const { return static_cast<int>(threads.size()); }

    /**
     * Process-wide pool sized for the hardware, built on first use.
     * Intentionally leaked: s2ta_fatal may call std::exit from a
     * worker, and a static destructor would then join the worker
     * from itself (std::terminate). Leaking keeps the pool's
     * synchronization state alive for any workers parked in wait
     * while the process exits.
     */
    static ThreadPool &
    global()
    {
        static ThreadPool *pool = new ThreadPool();
        return *pool;
    }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete.
     *
     * Behavioral contract:
     *  - the caller participates as a lane, so a pool with zero
     *    helpers (or n == 1) degrades to a plain serial loop;
     *  - thread-safe: concurrent parallelFor calls from different
     *    threads are serialized (one job at a time, FIFO by mutex
     *    acquisition); calls from *inside* a worker lane run
     *    inline, so nested parallelism composes without deadlock
     *    or oversubscription — this also holds across distinct
     *    pool instances (the in-worker flag is per thread, not per
     *    pool);
     *  - scheduling is non-deterministic, results must not be:
     *    have fn(i) write only to slot/stripe i and reduce in
     *    index order afterwards, which makes the outcome bitwise
     *    identical to a serial loop at every lane count;
     *  - exceptions must not escape fn (workers have no handler).
     *
     * @param n  index count; n <= 0 is a no-op.
     * @param fn callable invoked as fn(int64_t i), i in [0, n).
     */
    template <typename Fn>
    void
    parallelFor(int64_t n, Fn &&fn)
    {
        if (n <= 0)
            return;
        if (n == 1 || threads.empty() || inside_worker) {
            for (int64_t i = 0; i < n; ++i)
                fn(i);
            return;
        }

        // One job at a time; concurrent callers queue up here.
        std::lock_guard<std::mutex> job_lk(job_mu);
        auto job = std::make_shared<Job>();
        job->limit = n;
        job->call = [&fn](int64_t i) { fn(i); };
        {
            std::lock_guard<std::mutex> lk(mu);
            current = job;
            ++generation;
        }
        wake_cv.notify_all();

        // The caller participates; mark its lane busy so a nested
        // parallelFor from inside fn runs inline.
        inside_worker = true;
        drain(*job);
        inside_worker = false;

        // Done when the counter is exhausted and no lane is still
        // executing a claimed index. Lanes that never claimed work
        // are not waited for (the shared_ptr keeps the job alive
        // for any of them waking late).
        std::unique_lock<std::mutex> lk(mu);
        done_cv.wait(lk, [&] {
            return job->next.load() >= job->limit &&
                   job->active.load() == 0;
        });
        if (current == job)
            current.reset();
    }

    /**
     * Run fn(begin, end) over [0, n) split into contiguous stripes
     * of at most @p stripe indices, dispatched with parallelFor
     * (same thread-safety and determinism contract). The intra-GEMM
     * sharding primitive: stripes own disjoint index ranges
     * (callers write disjoint output rows), so results are bitwise
     * identical to one fn(0, n) call at any lane count. A single
     * stripe short-circuits to one inline fn(0, n) call.
     *
     * @param n      total index count.
     * @param stripe maximum indices per stripe; must be > 0.
     * @param fn     callable invoked as fn(int64_t begin,
     *               int64_t end) over half-open ranges.
     */
    template <typename Fn>
    void
    parallelForStripes(int64_t n, int64_t stripe, Fn &&fn)
    {
        s2ta_assert(stripe > 0, "stripe %ld", stripe);
        const int64_t stripes = (n + stripe - 1) / stripe;
        if (stripes <= 1) {
            if (n > 0)
                fn(static_cast<int64_t>(0), n);
            return;
        }
        parallelFor(stripes, [&](int64_t s) {
            const int64_t begin = s * stripe;
            fn(begin, std::min(n, begin + stripe));
        });
    }

  private:
    struct Job
    {
        std::function<void(int64_t)> call;
        std::atomic<int64_t> next{0};
        int64_t limit = 0;
        /** Lanes currently inside drain() for this job. */
        std::atomic<int> active{0};
    };

    void
    drain(Job &job)
    {
        job.active.fetch_add(1);
        for (;;) {
            const int64_t i =
                job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.limit)
                break;
            job.call(i);
        }
        {
            // Decrement under the lock so the caller's predicate
            // re-check cannot miss the final transition, and so the
            // lane's writes happen-before the caller's wakeup.
            std::lock_guard<std::mutex> lk(mu);
            job.active.fetch_sub(1);
        }
        done_cv.notify_all();
    }

    void
    workerLoop()
    {
        inside_worker = true;
        uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lk(mu);
                wake_cv.wait(lk, [&] {
                    return stopping || generation != seen;
                });
                if (stopping)
                    return;
                seen = generation;
                job = current;
            }
            if (job)
                drain(*job);
        }
    }

    std::vector<std::thread> threads;
    std::mutex job_mu;
    std::mutex mu;
    std::condition_variable wake_cv;
    std::condition_variable done_cv;
    std::shared_ptr<Job> current;
    uint64_t generation = 0;
    bool stopping = false;

    static thread_local bool inside_worker;
};

inline thread_local bool ThreadPool::inside_worker = false;

} // namespace s2ta

#endif // S2TA_BASE_THREAD_POOL_HH
