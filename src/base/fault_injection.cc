#include "base/fault_injection.hh"

namespace s2ta {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Map a 64-bit hash onto [0, 1) with 53 bits of precision. */
double
unitInterval(uint64_t x)
{
    return double(x >> 11) * 0x1.0p-53;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::StoreRead: return "store-read";
      case FaultSite::StoreWrite: return "store-write";
      case FaultSite::StoreRename: return "store-rename";
      case FaultSite::StoreBitFlip: return "store-bit-flip";
      case FaultSite::SpillEncode: return "spill-encode";
      case FaultSite::SpillDecode: return "spill-decode";
      case FaultSite::LayerCompute: return "layer-compute";
      case FaultSite::LayerStall: return "layer-stall";
      case FaultSite::ReplicaCrash: return "replica-crash";
      case FaultSite::ReplicaStall: return "replica-stall";
      case FaultSite::ReplicaRestart: return "replica-restart";
    }
    s2ta_panic("unknown fault site %d", int(site));
}

void
FaultInjector::setRate(FaultSite site, double rate)
{
    s2ta_assert(rate >= 0.0 && rate <= 1.0,
                "fault rate for %s must be in [0, 1], got %f",
                faultSiteName(site), rate);
    rates_[int(site)] = rate;
}

void
FaultInjector::setStallCycles(int64_t lo, int64_t hi)
{
    s2ta_assert(lo >= 0 && hi >= lo,
                "stall cycle range must satisfy 0 <= lo <= hi, got "
                "[%lld, %lld]", (long long)lo, (long long)hi);
    stall_lo = lo;
    stall_hi = hi;
}

uint64_t
FaultInjector::mix(FaultSite site, uint64_t identity) const
{
    return mix64(mix64(seed_ ^ mix64(uint64_t(int(site)) + 1)) ^
                 mix64(identity));
}

bool
FaultInjector::shouldFail(FaultSite site, uint64_t identity) const
{
    const int s = int(site);
    evaluated_[s].fetch_add(1, std::memory_order_relaxed);
    const double rate = rates_[s];
    if (rate <= 0.0)
        return false;
    const bool fire = rate >= 1.0 || unitInterval(mix(site, identity)) < rate;
    if (fire)
        injected_[s].fetch_add(1, std::memory_order_relaxed);
    return fire;
}

int64_t
FaultInjector::stallCycles(uint64_t identity) const
{
    if (!shouldFail(FaultSite::LayerStall, identity))
        return 0;
    const uint64_t span = uint64_t(stall_hi - stall_lo) + 1;
    // Independent draw for the magnitude so it does not correlate
    // with the fire/no-fire decision.
    const uint64_t draw = mix64(mix(FaultSite::LayerStall, identity) ^
                                0xA5A5A5A5A5A5A5A5ull);
    return stall_lo + int64_t(draw % span);
}

FaultInjector::SiteStats
FaultInjector::stats(FaultSite site) const
{
    SiteStats s;
    s.evaluated = evaluated_[int(site)].load(std::memory_order_relaxed);
    s.injected = injected_[int(site)].load(std::memory_order_relaxed);
    return s;
}

int64_t
FaultInjector::injected(FaultSite site) const
{
    return injected_[int(site)].load(std::memory_order_relaxed);
}

int64_t
FaultInjector::evaluated(FaultSite site) const
{
    return evaluated_[int(site)].load(std::memory_order_relaxed);
}

uint64_t
FaultInjector::combineId(uint64_t a, uint64_t b)
{
    return mix64(a ^ mix64(b + 0x51ED270B9A3C65B5ull));
}

} // namespace s2ta
