/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger / core dump can capture the state.
 * fatal()  - the *user* asked for something impossible (bad config,
 *            mismatched shapes); exits with an error code.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - plain status output.
 */

#ifndef S2TA_BASE_LOGGING_HH
#define S2TA_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace s2ta {

/** Severity of a log message; controls the prefix and the exit path. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Print a formatted message with a severity prefix to stderr. */
void logVprintf(LogLevel level, const char *file, int line,
                const char *fmt, std::va_list args);

/** Shared implementation for the variadic front-ends below. */
[[gnu::format(printf, 4, 5)]]
void logPrintf(LogLevel level, const char *file, int line,
               const char *fmt, ...);

[[noreturn]] [[gnu::format(printf, 3, 4)]]
void panicImpl(const char *file, int line, const char *fmt, ...);

[[noreturn]] [[gnu::format(printf, 3, 4)]]
void fatalImpl(const char *file, int line, const char *fmt, ...);

} // namespace detail

} // namespace s2ta

/** Report an unrecoverable internal error and abort. */
#define s2ta_panic(...) \
    ::s2ta::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unrecoverable user/configuration error and exit(1). */
#define s2ta_fatal(...) \
    ::s2ta::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious condition; execution continues. */
#define s2ta_warn(...) \
    ::s2ta::detail::logPrintf(::s2ta::LogLevel::Warn, __FILE__, \
                              __LINE__, __VA_ARGS__)

/** Report normal operating status. */
#define s2ta_inform(...) \
    ::s2ta::detail::logPrintf(::s2ta::LogLevel::Inform, __FILE__, \
                              __LINE__, __VA_ARGS__)

/**
 * Check an internal invariant; panics with the stringified condition
 * and a mandatory printf-style explanation when it does not hold.
 */
#define s2ta_assert(cond, fmt, ...) \
    do { \
        if (!(cond)) { \
            ::s2ta::detail::panicImpl(__FILE__, __LINE__, \
                "assertion '%s' failed: " fmt, \
                #cond __VA_OPT__(,) __VA_ARGS__); \
        } \
    } while (0)

#endif // S2TA_BASE_LOGGING_HH
