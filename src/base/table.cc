#include "base/table.hh"

#include <algorithm>
#include <cinttypes>

#include "base/logging.hh"

namespace s2ta {

Table::Table(std::vector<std::string> header_, std::string title_)
    : title(std::move(title_)), header(std::move(header_))
{
    s2ta_assert(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    s2ta_assert(row.size() == header.size(),
                "row arity %zu != header arity %zu",
                row.size(), header.size());
    rows.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows.emplace_back();
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::count(int64_t v)
{
    char raw[32];
    std::snprintf(raw, sizeof(raw), "%" PRId64, v);
    const std::string digits(raw);
    // Re-emit with ',' every three digits, skipping a leading '-'.
    const size_t start = (!digits.empty() && digits[0] == '-') ? 1 : 0;
    std::string s = digits.substr(0, start);
    const size_t ndigits = digits.size() - start;
    for (size_t i = 0; i < ndigits; ++i) {
        if (i > 0 && (ndigits - i) % 3 == 0)
            s.push_back(',');
        s.push_back(digits[start + i]);
    }
    return s;
}

std::string
Table::ratio(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
Table::percent(double frac, int precision)
{
    return num(frac * 100.0, precision) + "%";
}

void
Table::print(std::FILE *out) const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    size_t total = 0;
    for (size_t w : width)
        total += w + 3;

    if (!title.empty())
        std::fprintf(out, "== %s ==\n", title.c_str());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            // Left-align the first column, right-align the rest.
            if (c == 0) {
                std::fprintf(out, "%-*s", static_cast<int>(width[c]),
                             row[c].c_str());
            } else {
                std::fprintf(out, "%*s", static_cast<int>(width[c]),
                             row[c].c_str());
            }
            if (c + 1 < row.size())
                std::fprintf(out, " | ");
        }
        std::fprintf(out, "\n");
    };

    auto print_sep = [&]() {
        for (size_t i = 0; i < total; ++i)
            std::fputc('-', out);
        std::fputc('\n', out);
    };

    print_row(header);
    print_sep();
    for (const auto &row : rows) {
        if (row.empty())
            print_sep();
        else
            print_row(row);
    }
    std::fflush(out);
}

} // namespace s2ta
