#include "base/logging.hh"

namespace s2ta {
namespace detail {

namespace {

/** Map a severity to the prefix printed before the message. */
const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // anonymous namespace

void
logVprintf(LogLevel level, const char *file, int line,
           const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", levelPrefix(level));
    std::vfprintf(stderr, fmt, args);
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        std::fprintf(stderr, " [%s:%d]", file, line);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

void
logPrintf(LogLevel level, const char *file, int line,
          const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    logVprintf(level, file, line, fmt, args);
    va_end(args);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    logVprintf(LogLevel::Panic, file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    logVprintf(LogLevel::Fatal, file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace detail
} // namespace s2ta
