#include "tensor/conv.hh"

#include <cstring>

namespace s2ta {

namespace {

/** Round @p v up to the next multiple of @p align. */
int
alignUp(int v, int align)
{
    return (v + align - 1) / align * align;
}

/**
 * Validate a (possibly batched) activation tensor against the conv
 * geometry: (in_h, in_w, in_c) at batch 1, (batch, in_h, in_w,
 * in_c) for batch > 1.
 */
void
checkBatchedInput(const Conv2dShape &shape, const Int8Tensor &input,
                  int batch)
{
    s2ta_assert(batch >= 1, "batch=%d", batch);
    const std::vector<int> per_sample = {shape.in_h, shape.in_w,
                                         shape.in_c};
    const std::vector<int> batched = {batch, shape.in_h, shape.in_w,
                                      shape.in_c};
    if (batch == 1) {
        s2ta_assert(input.shape() == per_sample ||
                    input.shape() == batched,
                    "input shape mismatch");
    } else {
        s2ta_assert(input.shape() == batched,
                    "batched input shape mismatch (batch=%d)",
                    batch);
    }
}

} // anonymous namespace

Int32Tensor
convReference(const Conv2dShape &shape, const Int8Tensor &input,
              const Int8Tensor &weights)
{
    s2ta_assert(shape.valid(), "invalid conv shape");
    s2ta_assert(input.shape() ==
                std::vector<int>({shape.in_h, shape.in_w, shape.in_c}),
                "input shape mismatch");
    s2ta_assert(weights.shape() ==
                std::vector<int>({shape.kernel_h, shape.kernel_w,
                                  shape.groupInC(), shape.out_c}),
                "weight shape mismatch");

    const int oh = shape.outH(), ow = shape.outW();
    Int32Tensor out({oh, ow, shape.out_c}, 0);

    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int oc = 0; oc < shape.out_c; ++oc) {
                const int g = oc / shape.groupOutC();
                const int c_base = g * shape.groupInC();
                int32_t acc = 0;
                for (int ky = 0; ky < shape.kernel_h; ++ky) {
                    const int iy = oy * shape.stride + ky - shape.pad;
                    if (iy < 0 || iy >= shape.in_h)
                        continue;
                    for (int kx = 0; kx < shape.kernel_w; ++kx) {
                        const int ix =
                            ox * shape.stride + kx - shape.pad;
                        if (ix < 0 || ix >= shape.in_w)
                            continue;
                        for (int c = 0; c < shape.groupInC(); ++c) {
                            acc += static_cast<int32_t>(
                                       input(iy, ix, c_base + c)) *
                                   weights(ky, kx, c, oc);
                        }
                    }
                }
                out(oy, ox, oc) = acc;
            }
        }
    }
    return out;
}

GemmProblem
im2colLower(const Conv2dShape &shape, const Int8Tensor &input,
            const Int8Tensor &weights, int group, int channel_align,
            int batch)
{
    s2ta_assert(shape.valid(), "invalid conv shape");
    s2ta_assert(group >= 0 && group < shape.groups,
                "group %d of %d", group, shape.groups);
    s2ta_assert(channel_align > 0, "channel_align=%d", channel_align);
    checkBatchedInput(shape, input, batch);

    const int oh = shape.outH(), ow = shape.outW();
    const int gc = shape.groupInC();
    const int seg = alignUp(gc, channel_align);
    const int k = shape.kernel_h * shape.kernel_w * seg;
    const int c_base = group * gc;
    const int oc_base = group * shape.groupOutC();
    const int64_t sample_elems = static_cast<int64_t>(shape.in_h) *
                                 shape.in_w * shape.in_c;

    GemmProblem p(batch * oh * ow, k, shape.groupOutC());

    // Activation matrix: one row per output pixel, samples stacked
    // back to back along M.
    for (int s = 0; s < batch; ++s) {
        const int8_t *in =
            input.data() + static_cast<size_t>(s) * sample_elems;
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const int row = (s * oh + oy) * ow + ox;
                for (int ky = 0; ky < shape.kernel_h; ++ky) {
                    const int iy =
                        oy * shape.stride + ky - shape.pad;
                    for (int kx = 0; kx < shape.kernel_w; ++kx) {
                        const int ix =
                            ox * shape.stride + kx - shape.pad;
                        const int kbase =
                            (ky * shape.kernel_w + kx) * seg;
                        if (iy < 0 || iy >= shape.in_h || ix < 0 ||
                            ix >= shape.in_w) {
                            continue; // zero padding in place
                        }
                        const int8_t *src =
                            in + (static_cast<size_t>(iy) *
                                      shape.in_w +
                                  ix) *
                                     shape.in_c +
                            c_base;
                        for (int c = 0; c < gc; ++c)
                            p.actAt(row, kbase + c) = src[c];
                    }
                }
            }
        }
    }

    // Weight matrix: one column per output channel of this group.
    for (int ky = 0; ky < shape.kernel_h; ++ky) {
        for (int kx = 0; kx < shape.kernel_w; ++kx) {
            const int kbase = (ky * shape.kernel_w + kx) * seg;
            for (int c = 0; c < gc; ++c) {
                for (int j = 0; j < shape.groupOutC(); ++j) {
                    p.wgtAt(kbase + c, j) =
                        weights(ky, kx, c, oc_base + j);
                }
            }
        }
    }
    return p;
}

std::vector<GemmProblem>
im2colLowerAll(const Conv2dShape &shape, const Int8Tensor &input,
               const Int8Tensor &weights, int channel_align,
               int batch)
{
    s2ta_assert(shape.valid(), "invalid conv shape");
    s2ta_assert(channel_align > 0, "channel_align=%d", channel_align);
    checkBatchedInput(shape, input, batch);

    const int oh = shape.outH(), ow = shape.outW();
    const int gc = shape.groupInC();
    const int gn = shape.groupOutC();
    const int seg = alignUp(gc, channel_align);
    const int k = shape.kernel_h * shape.kernel_w * seg;
    const int groups = shape.groups;
    const int64_t sample_elems = static_cast<int64_t>(shape.in_h) *
                                 shape.in_w * shape.in_c;

    std::vector<GemmProblem> out;
    out.reserve(static_cast<size_t>(groups));
    for (int g = 0; g < groups; ++g)
        out.emplace_back(batch * oh * ow, k, gn);

    // Activation matrices: the tap-bounds arithmetic runs once per
    // (sample, pixel, tap) for all groups, and each input channel
    // row (contiguous in NHWC) is scattered to the group matrices
    // with one contiguous copy per group. Samples stack back to
    // back along M.
    for (int s = 0; s < batch; ++s) {
        const int8_t *in =
            input.data() + static_cast<size_t>(s) * sample_elems;
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const int row = (s * oh + oy) * ow + ox;
                for (int ky = 0; ky < shape.kernel_h; ++ky) {
                    const int iy =
                        oy * shape.stride + ky - shape.pad;
                    if (iy < 0 || iy >= shape.in_h)
                        continue; // zero padding already in place
                    for (int kx = 0; kx < shape.kernel_w; ++kx) {
                        const int ix =
                            ox * shape.stride + kx - shape.pad;
                        if (ix < 0 || ix >= shape.in_w)
                            continue;
                        const int kbase =
                            (ky * shape.kernel_w + kx) * seg;
                        const int8_t *src =
                            in + (static_cast<size_t>(iy) *
                                      shape.in_w +
                                  ix) *
                                     shape.in_c;
                        for (int g = 0; g < groups; ++g) {
                            std::memcpy(
                                &out[static_cast<size_t>(g)]
                                     .a[static_cast<size_t>(row) *
                                            k +
                                        kbase],
                                src + static_cast<size_t>(g) * gc,
                                static_cast<size_t>(gc));
                        }
                    }
                }
            }
        }
    }

    // Weight matrices: the output-channel dimension is contiguous,
    // so each (tap, channel) row is split across groups with one
    // contiguous copy per group.
    for (int ky = 0; ky < shape.kernel_h; ++ky) {
        for (int kx = 0; kx < shape.kernel_w; ++kx) {
            const int kbase = (ky * shape.kernel_w + kx) * seg;
            for (int c = 0; c < gc; ++c) {
                const int8_t *src = &weights(ky, kx, c, 0);
                for (int g = 0; g < groups; ++g) {
                    std::memcpy(
                        &out[static_cast<size_t>(g)]
                             .w[static_cast<size_t>(kbase + c) * gn],
                        src + static_cast<size_t>(g) * gn,
                        static_cast<size_t>(gn));
                }
            }
        }
    }
    return out;
}

void
scatterGemmResult(const Conv2dShape &shape, int group,
                  const std::vector<int32_t> &gemm_out,
                  Int32Tensor &output, int batch)
{
    const int oh = shape.outH(), ow = shape.outW();
    const int gn = shape.groupOutC();
    const int oc_base = group * gn;
    s2ta_assert(batch >= 1, "batch=%d", batch);
    s2ta_assert(gemm_out.size() == static_cast<size_t>(batch) * oh *
                                       ow * gn,
                "gemm result size mismatch");
    const std::vector<int> per_sample = {oh, ow, shape.out_c};
    const std::vector<int> batched = {batch, oh, ow, shape.out_c};
    s2ta_assert(batch == 1 ? (output.shape() == per_sample ||
                              output.shape() == batched)
                           : output.shape() == batched,
                "output shape mismatch");

    const int64_t out_stride = static_cast<int64_t>(oh) * ow *
                               shape.out_c;
    for (int s = 0; s < batch; ++s) {
        int32_t *dst =
            output.data() + static_cast<size_t>(s) * out_stride;
        for (int oy = 0; oy < oh; ++oy)
            for (int ox = 0; ox < ow; ++ox)
                for (int j = 0; j < gn; ++j)
                    dst[(static_cast<size_t>(oy) * ow + ox) *
                            shape.out_c +
                        oc_base + j] =
                        gemm_out[(((static_cast<size_t>(s) * oh +
                                    oy) *
                                       ow +
                                   ox)) *
                                     gn +
                                 j];
    }
}

} // namespace s2ta
