/**
 * @file
 * GEMM problem container and the golden INT8 reference kernel.
 *
 * Every accelerator model in src/arch consumes a GemmProblem and must
 * produce a result bit-identical to gemmReference() over the same
 * (possibly DBB-pruned) operands. CNN layers are lowered to GEMM via
 * im2col (tensor/conv.hh), with the K dimension laid out so that DBB
 * channel blocks are contiguous.
 */

#ifndef S2TA_TENSOR_GEMM_HH
#define S2TA_TENSOR_GEMM_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace s2ta {

/**
 * INT8 GEMM operands: C[i][j] = sum_k a[i*k + kk] * w[kk*n + j].
 *
 * 'a' holds activations (M x K row-major, one output pixel per row)
 * and 'w' holds weights (K x N row-major, one output channel per
 * column). K is padded by the producer to a multiple of the DBB block
 * size so block boundaries never straddle im2col segments.
 */
struct GemmProblem
{
    int m = 0;
    int k = 0;
    int n = 0;
    std::vector<int8_t> a;
    std::vector<int8_t> w;

    GemmProblem() = default;

    GemmProblem(int m_, int k_, int n_)
        : m(m_), k(k_), n(n_),
          a(static_cast<size_t>(m_) * k_, 0),
          w(static_cast<size_t>(k_) * n_, 0)
    {
        s2ta_assert(m_ > 0 && k_ > 0 && n_ > 0,
                    "bad GEMM dims %dx%dx%d", m_, k_, n_);
    }

    /** Activation element (row i, reduction position kk). */
    int8_t &actAt(int i, int kk) { return a[idxA(i, kk)]; }
    int8_t actAt(int i, int kk) const { return a[idxA(i, kk)]; }

    /** Weight element (reduction position kk, column j). */
    int8_t &wgtAt(int kk, int j) { return w[idxW(kk, j)]; }
    int8_t wgtAt(int kk, int j) const { return w[idxW(kk, j)]; }

    /** Dense multiply-accumulate count m*k*n. */
    int64_t
    denseMacs() const
    {
        return static_cast<int64_t>(m) * k * n;
    }

    /** Fraction of zero elements in the activation operand. */
    double actSparsity() const { return sparsityOf(a); }

    /** Fraction of zero elements in the weight operand. */
    double wgtSparsity() const { return sparsityOf(w); }

  private:
    size_t
    idxA(int i, int kk) const
    {
        s2ta_assert(i >= 0 && i < m && kk >= 0 && kk < k,
                    "A index (%d, %d)", i, kk);
        return static_cast<size_t>(i) * k + kk;
    }

    size_t
    idxW(int kk, int j) const
    {
        s2ta_assert(kk >= 0 && kk < k && j >= 0 && j < n,
                    "W index (%d, %d)", kk, j);
        return static_cast<size_t>(kk) * n + j;
    }

    static double
    sparsityOf(const std::vector<int8_t> &v)
    {
        if (v.empty())
            return 0.0;
        int64_t zeros = 0;
        for (int8_t x : v)
            zeros += (x == 0);
        return static_cast<double>(zeros) /
               static_cast<double>(v.size());
    }
};

/**
 * Golden dense INT8 GEMM with INT32 accumulation.
 * @return row-major M x N INT32 result.
 */
std::vector<int32_t> gemmReference(const GemmProblem &p);

} // namespace s2ta

#endif // S2TA_TENSOR_GEMM_HH
