/**
 * @file
 * Minimal dense N-dimensional tensor used throughout the library.
 *
 * Row-major layout; the last dimension is contiguous. Activation
 * tensors use NHWC so that the channel dimension (the DBB blocking
 * dimension, paper Fig. 5) is contiguous in memory.
 */

#ifndef S2TA_TENSOR_TENSOR_HH
#define S2TA_TENSOR_TENSOR_HH

#include <cstdint>
#include <numeric>
#include <vector>

#include "base/logging.hh"

namespace s2ta {

/**
 * Dense row-major tensor of element type T.
 *
 * Deliberately simple: owning storage, no views, no broadcasting.
 * The simulators operate on raw spans of this storage in hot loops.
 */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    /** Construct with a shape, filled with @p init. */
    explicit Tensor(std::vector<int> shape_, T init = T{})
        : shp(std::move(shape_))
    {
        int64_t n = 1;
        for (int d : shp) {
            s2ta_assert(d > 0, "non-positive dim %d", d);
            n *= d;
        }
        buf.assign(static_cast<size_t>(n), init);
        computeStrides();
    }

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(shp.size()); }

    /** Extent of dimension i. */
    int
    dim(int i) const
    {
        s2ta_assert(i >= 0 && i < rank(), "dim %d of rank-%d tensor",
                    i, rank());
        return shp[static_cast<size_t>(i)];
    }

    /** Full shape vector. */
    const std::vector<int> &shape() const { return shp; }

    /** Total element count. */
    int64_t size() const { return static_cast<int64_t>(buf.size()); }

    /** Raw storage access. */
    T *data() { return buf.data(); }
    const T *data() const { return buf.data(); }

    /** Linear (flat) element access. */
    T &
    flat(int64_t i)
    {
        s2ta_assert(i >= 0 && i < size(), "flat index %ld", i);
        return buf[static_cast<size_t>(i)];
    }

    const T &
    flat(int64_t i) const
    {
        s2ta_assert(i >= 0 && i < size(), "flat index %ld", i);
        return buf[static_cast<size_t>(i)];
    }

    /** Multi-dimensional element access, e.g. t(n, h, w, c). */
    template <typename... Idx>
    T &
    operator()(Idx... idx)
    {
        return buf[static_cast<size_t>(offset(idx...))];
    }

    template <typename... Idx>
    const T &
    operator()(Idx... idx) const
    {
        return buf[static_cast<size_t>(offset(idx...))];
    }

    /** Set every element to @p v. */
    void
    fill(T v)
    {
        std::fill(buf.begin(), buf.end(), v);
    }

    /** Reshape in place; the element count must be preserved. */
    void
    reshape(std::vector<int> new_shape)
    {
        int64_t n = 1;
        for (int d : new_shape)
            n *= d;
        s2ta_assert(n == size(), "reshape %ld -> %ld elements",
                    size(), n);
        shp = std::move(new_shape);
        computeStrides();
    }

    bool
    operator==(const Tensor &o) const
    {
        return shp == o.shp && buf == o.buf;
    }

  private:
    /** Recompute row-major strides from the shape. */
    void
    computeStrides()
    {
        str.assign(shp.size(), 1);
        for (int i = rank() - 2; i >= 0; --i) {
            str[static_cast<size_t>(i)] =
                str[static_cast<size_t>(i + 1)] *
                shp[static_cast<size_t>(i + 1)];
        }
    }

    /** Compute the flat offset of a multi-index. */
    template <typename... Idx>
    int64_t
    offset(Idx... idx) const
    {
        s2ta_assert(sizeof...(idx) == shp.size(),
                    "%zu indices for rank-%d tensor",
                    sizeof...(idx), rank());
        const int64_t ii[] = {static_cast<int64_t>(idx)...};
        int64_t off = 0;
        for (size_t i = 0; i < sizeof...(idx); ++i) {
            s2ta_assert(ii[i] >= 0 && ii[i] < shp[i],
                        "index %ld out of bound %d at dim %zu",
                        ii[i], shp[i], i);
            off += ii[i] * str[i];
        }
        return off;
    }

    std::vector<int> shp;
    std::vector<int64_t> str;
    std::vector<T> buf;
};

using Int8Tensor = Tensor<int8_t>;
using Int32Tensor = Tensor<int32_t>;
using FloatTensor = Tensor<float>;

} // namespace s2ta

#endif // S2TA_TENSOR_TENSOR_HH
