/**
 * @file
 * 2-D convolution shapes, the direct reference kernel, and the
 * im2col lowering used to map convolutions onto the GEMM-based
 * accelerator models.
 *
 * Layout conventions:
 *  - activations: NHWC, i.e. (H, W, C) at batch 1 or (N, H, W, C)
 *    for batch > 1;
 *  - weights: (KH, KW, C/groups, OC).
 * The channel dimension is innermost so that 1x1xBZ DBB blocks
 * (paper Fig. 5) are contiguous.
 *
 * Batch handling: a batch of N samples folds into the GEMM M axis.
 * The lowered activation matrix stacks each sample's im2col rows
 * back to back (sample-major: rows [s*outH*outW, (s+1)*outH*outW)
 * belong to sample s), and the weight matrix is untouched. GEMM
 * output rows are computed independently of each other, so a
 * batched run is bitwise identical to the concatenation of the
 * per-sample runs on every engine.
 */

#ifndef S2TA_TENSOR_CONV_HH
#define S2TA_TENSOR_CONV_HH

#include <cstdint>

#include "tensor/gemm.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** Geometry of a 2-D convolution (per sample; batch is a property
 *  of the workload, not the shape). */
struct Conv2dShape
{
    int in_c = 0;
    int in_h = 0;
    int in_w = 0;
    int out_c = 0;
    int kernel_h = 1;
    int kernel_w = 1;
    int stride = 1;
    int pad = 0;
    /** groups == in_c (and out_c == in_c) makes this depthwise. */
    int groups = 1;

    int
    outH() const
    {
        return (in_h + 2 * pad - kernel_h) / stride + 1;
    }

    int
    outW() const
    {
        return (in_w + 2 * pad - kernel_w) / stride + 1;
    }

    /** Input channels seen by one group. */
    int groupInC() const { return in_c / groups; }

    /** Output channels produced by one group. */
    int groupOutC() const { return out_c / groups; }

    /** Dense multiply-accumulate count of the whole convolution. */
    int64_t
    denseMacs() const
    {
        return static_cast<int64_t>(outH()) * outW() * out_c *
               kernel_h * kernel_w * groupInC();
    }

    bool
    valid() const
    {
        return in_c > 0 && in_h > 0 && in_w > 0 && out_c > 0 &&
               kernel_h > 0 && kernel_w > 0 && stride > 0 &&
               pad >= 0 && groups > 0 && in_c % groups == 0 &&
               out_c % groups == 0 && outH() > 0 && outW() > 0;
    }
};

/**
 * Direct (nested-loop) INT8 convolution reference.
 *
 * @param shape convolution geometry (must be valid()).
 * @param input (in_h, in_w, in_c) INT8 tensor.
 * @param weights (kernel_h, kernel_w, groupInC, out_c) INT8 tensor.
 * @return (outH, outW, out_c) INT32 tensor.
 */
Int32Tensor convReference(const Conv2dShape &shape,
                          const Int8Tensor &input,
                          const Int8Tensor &weights);

/**
 * Lower one group of a convolution to a GEMM via im2col.
 *
 * The reduction dimension is laid out as (ky, kx, c) with the channel
 * index fastest, and each (ky, kx) channel segment is padded up to a
 * multiple of @p channel_align so DBB blocks never straddle kernel
 * positions. Out-of-image taps contribute zeros (zero padding).
 *
 * @param shape convolution geometry.
 * @param input (in_h, in_w, in_c) INT8 activations, or
 *        (batch, in_h, in_w, in_c) when @p batch > 1.
 * @param weights (kernel_h, kernel_w, groupInC, out_c) INT8 weights.
 * @param group group index in [0, groups).
 * @param channel_align pad each channel segment to this multiple.
 * @param batch samples stacked along the GEMM M axis
 *        (sample-major rows).
 * @return GEMM with m = batch*outH*outW, n = groupOutC,
 *         k = kernel_h*kernel_w*align(groupInC).
 */
GemmProblem im2colLower(const Conv2dShape &shape,
                        const Int8Tensor &input,
                        const Int8Tensor &weights,
                        int group = 0,
                        int channel_align = 8,
                        int batch = 1);

/**
 * Batched im2col: lower every group of a convolution in one pass.
 *
 * Identical output to calling im2colLower for each group in turn
 * (element for element), but the input tensor's channel rows and
 * the weight taps are each walked once for all groups instead of
 * once per group — the win grows with the group count and makes a
 * depthwise layer's activations lower in a single sweep.
 *
 * @return one GemmProblem per group, indexed by group.
 */
std::vector<GemmProblem> im2colLowerAll(const Conv2dShape &shape,
                                        const Int8Tensor &input,
                                        const Int8Tensor &weights,
                                        int channel_align = 8,
                                        int batch = 1);

/**
 * Scatter a GEMM result for one group back into the output tensor.
 *
 * @param shape convolution geometry.
 * @param group group index the GEMM result belongs to.
 * @param gemm_out row-major (batch*outH*outW) x groupOutC INT32
 *        values (sample-major rows).
 * @param output (outH, outW, out_c) tensor updated in place, or
 *        (batch, outH, outW, out_c) when @p batch > 1.
 * @param batch samples carried by @p gemm_out.
 */
void scatterGemmResult(const Conv2dShape &shape, int group,
                       const std::vector<int32_t> &gemm_out,
                       Int32Tensor &output, int batch = 1);

} // namespace s2ta

#endif // S2TA_TENSOR_CONV_HH
