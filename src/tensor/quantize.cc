#include "tensor/quantize.hh"

#include <cmath>

namespace s2ta {

float
computeScale(const FloatTensor &t)
{
    float max_abs = 0.0f;
    for (int64_t i = 0; i < t.size(); ++i)
        max_abs = std::max(max_abs, std::fabs(t.flat(i)));
    return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

QuantizedTensor
quantize(const FloatTensor &t)
{
    return quantizeWithScale(t, computeScale(t));
}

QuantizedTensor
quantizeWithScale(const FloatTensor &t, float scale)
{
    s2ta_assert(scale > 0.0f, "scale must be positive, got %g",
                static_cast<double>(scale));
    QuantizedTensor q;
    q.scale = scale;
    q.values = Int8Tensor(t.shape());
    for (int64_t i = 0; i < t.size(); ++i) {
        float v = std::nearbyint(t.flat(i) / scale);
        v = std::min(127.0f, std::max(-127.0f, v));
        q.values.flat(i) = static_cast<int8_t>(v);
    }
    return q;
}

FloatTensor
dequantize(const QuantizedTensor &q)
{
    FloatTensor t(q.values.shape());
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = q.scale * static_cast<float>(q.values.flat(i));
    return t;
}

} // namespace s2ta
