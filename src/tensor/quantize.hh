/**
 * @file
 * Symmetric per-tensor INT8 quantization.
 *
 * The paper targets INT8 mobile inference (Sec. 1); the NN substrate
 * trains in float32 and quantizes weights/activations symmetrically to
 * [-127, 127] for the accelerator models.
 */

#ifndef S2TA_TENSOR_QUANTIZE_HH
#define S2TA_TENSOR_QUANTIZE_HH

#include "tensor/tensor.hh"

namespace s2ta {

/** A quantized tensor together with its dequantization scale. */
struct QuantizedTensor
{
    Int8Tensor values;
    /** real_value = scale * int_value. */
    float scale = 1.0f;
};

/**
 * Compute the symmetric per-tensor scale max|x| / 127.
 * Returns 1.0 for an all-zero tensor.
 */
float computeScale(const FloatTensor &t);

/** Quantize to INT8 with the symmetric per-tensor scale. */
QuantizedTensor quantize(const FloatTensor &t);

/** Quantize with a caller-provided scale (e.g. a calibrated one). */
QuantizedTensor quantizeWithScale(const FloatTensor &t, float scale);

/** Dequantize back to float32. */
FloatTensor dequantize(const QuantizedTensor &q);

} // namespace s2ta

#endif // S2TA_TENSOR_QUANTIZE_HH
