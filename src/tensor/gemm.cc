#include "tensor/gemm.hh"

namespace s2ta {

std::vector<int32_t>
gemmReference(const GemmProblem &p)
{
    std::vector<int32_t> c(static_cast<size_t>(p.m) * p.n, 0);
    // i-k-j loop order keeps the inner traversal contiguous in both
    // the weight matrix and the output row.
    for (int i = 0; i < p.m; ++i) {
        const int8_t *arow = &p.a[static_cast<size_t>(i) * p.k];
        int32_t *crow = &c[static_cast<size_t>(i) * p.n];
        for (int kk = 0; kk < p.k; ++kk) {
            const int32_t av = arow[kk];
            if (av == 0)
                continue;
            const int8_t *wrow = &p.w[static_cast<size_t>(kk) * p.n];
            for (int j = 0; j < p.n; ++j)
                crow[j] += av * wrow[j];
        }
    }
    return c;
}

} // namespace s2ta
