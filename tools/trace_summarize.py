#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file in the terminal.

Reads a trace produced by the obs Tracer (--trace-out on any bench,
or Tracer::writeChromeTrace) and prints:

  - the top-N span names by *total* time (sum of "X" durations) and
    by *self* time (total minus the time covered by child spans
    nested inside on the same thread), with counts and means;
  - per-category event counts, split by phase (spans / instants /
    counter samples);
  - the trace's thread count and wall extent.

Self time uses per-thread span nesting: spans on one tid are sorted
by start, and a span's children are the spans fully contained in it
that are not contained in a closer ancestor. The same file opens in
chrome://tracing / Perfetto; this is the terminal-sized view.

Exits non-zero on malformed input (not JSON, no traceEvents array,
or an event missing required keys), so CI can gate on it.

Usage: python3 tools/trace_summarize.py TRACE.json [--top N]
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print("trace_summarize: error: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load_events(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("%s is not valid JSON: %s" % (path, e))
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("%s has no traceEvents array (not a Chrome trace?)"
             % path)
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("traceEvents[%d] is not an object" % i)
        for key in ("ph", "name", "ts"):
            if key not in ev:
                fail("traceEvents[%d] is missing '%s'" % (i, key))
        if ev["ph"] == "X" and "dur" not in ev:
            fail("traceEvents[%d] is a span with no 'dur'" % i)
    return events


def self_times(spans):
    """Per-span self time (us) for one thread's spans.

    spans: list of (start_us, dur_us, name). A stack sweep over the
    spans sorted by (start, -dur) assigns each span's duration to it
    minus the durations of its immediate children.
    """
    self_us = defaultdict(float)
    ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack = []  # open ancestors: [start, end, name, child_us]
    for start, dur, name in ordered:
        end = start + dur
        while stack and start >= stack[-1][1]:
            s0, e0, n0, c0 = stack.pop()
            self_us[n0] += (e0 - s0) - c0
            if stack:
                stack[-1][3] += e0 - s0
        stack.append([start, end, name, 0.0])
    while stack:
        s0, e0, n0, c0 = stack.pop()
        self_us[n0] += (e0 - s0) - c0
        if stack:
            stack[-1][3] += e0 - s0
    return self_us


def main():
    args = sys.argv[1:]
    top_n = 10
    if "--top" in args:
        i = args.index("--top")
        if i + 1 >= len(args):
            fail("--top needs a value")
        top_n = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    events = load_events(args[0])

    spans_by_tid = defaultdict(list)
    total_us = defaultdict(float)
    counts = defaultdict(int)
    cat_phase = defaultdict(int)
    ts_min, ts_max = None, None
    tids = set()
    for ev in events:
        ph = ev["ph"]
        cat = ev.get("cat", "")
        tid = ev.get("tid", 0)
        tids.add(tid)
        ts = float(ev["ts"])
        end = ts + float(ev.get("dur", 0.0))
        ts_min = ts if ts_min is None else min(ts_min, ts)
        ts_max = end if ts_max is None else max(ts_max, end)
        cat_phase[(cat, ph)] += 1
        if ph == "X":
            dur = float(ev["dur"])
            name = ev["name"]
            spans_by_tid[tid].append((ts, dur, name))
            total_us[name] += dur
            counts[name] += 1

    self_us = defaultdict(float)
    for tid_spans in spans_by_tid.values():
        for name, us in self_times(tid_spans).items():
            self_us[name] += us

    extent_ms = ((ts_max - ts_min) / 1e3
                 if events and ts_max is not None else 0.0)
    print("%s: %d events, %d threads, %.3f ms extent"
          % (args[0], len(events), len(tids), extent_ms))

    if total_us:
        print("\ntop %d spans by total time:" % top_n)
        print("  %-28s %10s %8s %12s %12s"
              % ("name", "total ms", "count", "mean us",
                 "self ms"))
        ranked = sorted(total_us.items(), key=lambda kv: -kv[1])
        for name, us in ranked[:top_n]:
            n = counts[name]
            print("  %-28s %10.3f %8d %12.1f %12.3f"
                  % (name, us / 1e3, n, us / n,
                     self_us.get(name, 0.0) / 1e3))
        print("\ntop %d spans by self time:" % top_n)
        ranked = sorted(self_us.items(), key=lambda kv: -kv[1])
        for name, us in ranked[:top_n]:
            print("  %-28s self %10.3f ms of %10.3f ms total"
                  % (name, us / 1e3, total_us[name] / 1e3))
    else:
        print("\nno spans recorded")

    print("\nevents per (category, phase):")
    phase_name = {"X": "span", "i": "instant", "C": "counter"}
    for (cat, ph), n in sorted(cat_phase.items()):
        print("  %-16s %-8s %8d"
              % (cat or "(none)", phase_name.get(ph, ph), n))


if __name__ == "__main__":
    main()
