/**
 * @file
 * Prints what the SIMD kernel ladder resolved to on this machine:
 * each tier's compile-time availability and runtime cpuid probe,
 * the AVX-512 sub-feature probes (VNNI dense dot, VPOPCNTDQ profile
 * derivation), and the tier the dispatcher actually selected. CI
 * runs this before the kernel tests so a log of a failing runner
 * shows exactly which paths were live; it is also the quickest way
 * to see why --simd avx512 is rejected on a given host.
 *
 * Output is one `key value` pair per line (stable keys, lower-case
 * values) so scripts can grep it. Exits 0 always — an all-scalar
 * machine is a valid configuration, not an error.
 */

#include <cstdio>

#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"

using namespace s2ta;

int
main()
{
    std::printf("tier_scalar true\n");
    std::printf("tier_ssse3 %s\n",
                dbbSimdKernelSupportedImpl() ? "true" : "false");
    std::printf("tier_avx2 %s\n",
                dbbAvx2KernelSupportedImpl() ? "true" : "false");
    std::printf("tier_avx512 %s\n",
                dbbAvx512KernelSupportedImpl() ? "true" : "false");
    std::printf("subfeature_avx512_vnni %s\n",
                dbbVnniKernelSupportedImpl() ? "true" : "false");
    std::printf("subfeature_avx512_vpopcntdq %s\n",
                dbbVpopcntKernelSupportedImpl() ? "true" : "false");
    std::printf("vnni_dense_dot_enabled %s\n",
                dbbVnniDenseEnabled() ? "true" : "false");
    std::printf("profile_simd_enabled %s\n",
                dbbProfileSimdEnabled() ? "true" : "false");
    std::printf("active_kernel %s\n",
                dbbKernelKindName(dbbActiveKernel()));
    return 0;
}
