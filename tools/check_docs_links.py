#!/usr/bin/env python3
"""Verify internal documentation links.

Scans README.md and docs/*.md for inline markdown links and checks
that every relative target resolves to a file in the repo and that
every #anchor (in-page or cross-page) matches a heading in the
target file, using GitHub's heading-slug rules. External links
(http/https/mailto) are ignored. Exits non-zero listing every
broken link, so CI fails when a doc rots.

Usage: python3 tools/check_docs_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_slugs(path):
    """GitHub-style slugs of every heading in a markdown file."""
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            text = m.group(1).strip()
            # Drop markdown formatting and inline code, then apply
            # the github slug rules: lowercase, strip punctuation,
            # spaces and hyphens become hyphens.
            text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
            text = text.replace("`", "")
            slug = "".join(
                c for c in text.lower() if c.isalnum() or c in " -_"
            )
            slugs.add(slug.replace(" ", "-"))
    return slugs


def doc_files(root):
    files = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        files.append(readme)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def check(root):
    errors = []
    slug_cache = {}

    def slugs_of(path):
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    for src in doc_files(root):
        in_fence = False
        with open(src, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(
                        ("http://", "https://", "mailto:")
                    ):
                        continue
                    where = "%s:%d" % (
                        os.path.relpath(src, root),
                        lineno,
                    )
                    path_part, _, anchor = target.partition("#")
                    if path_part:
                        dest = os.path.normpath(
                            os.path.join(
                                os.path.dirname(src), path_part
                            )
                        )
                        if not os.path.exists(dest):
                            errors.append(
                                "%s: broken link '%s' (no such "
                                "file)" % (where, target)
                            )
                            continue
                    else:
                        dest = src
                    if anchor:
                        if not dest.endswith(".md"):
                            errors.append(
                                "%s: anchor on non-markdown "
                                "target '%s'" % (where, target)
                            )
                        elif anchor not in slugs_of(dest):
                            errors.append(
                                "%s: broken anchor '%s' (no such "
                                "heading in %s)"
                                % (
                                    where,
                                    target,
                                    os.path.relpath(dest, root),
                                )
                            )
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    files = doc_files(root)
    if not files:
        print("no documentation files found under", root)
        return 1
    errors = check(root)
    for e in errors:
        print("ERROR:", e)
    print(
        "%d file(s) checked, %d broken link(s)"
        % (len(files), len(errors))
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
