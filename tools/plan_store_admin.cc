/**
 * @file
 * Plan-store administration: inspect, verify, and compact a
 * persistent plan-store directory (see src/arch/plan_store.hh)
 * without standing up an accelerator or a bench.
 *
 *   plan_store_admin stats   DIR
 *       Pure directory scan: published entries, torn temps, and
 *       quarantined files, with byte totals. Touches nothing.
 *
 *   plan_store_admin verify  DIR
 *       Load every published entry through the real validation
 *       path and report ok/rejected per file. Rejected files are
 *       quarantined exactly as a serving process would quarantine
 *       them (renamed aside, never re-read).
 *
 *   plan_store_admin compact DIR [--cap-mb N] [--max-age-s S]
 *       Lifecycle sweep: remove torn temps and quarantined files,
 *       evict entries older than --max-age-s (0 = no age cap),
 *       then evict oldest-first until the published bytes fit
 *       --cap-mb (0 = uncapped). Prints what was swept and what
 *       survived.
 *
 *   plan_store_admin quarantine DIR [--purge]
 *       List every quarantined (.quar) file with its size and
 *       age, oldest first — the post-incident triage view: what
 *       did serving processes reject, and how long ago. With
 *       --purge, delete them after listing (the targeted cleanup;
 *       compact also removes them but evicts healthy entries
 *       too when capped).
 *
 * Exit status: 0 on success; verify exits 1 when any entry was
 * rejected (after quarantining it), so scripts can gate on a clean
 * store. quarantine exits 1 when quarantined files are present
 * and --purge was not given, so scripts can gate on "nothing
 * quarantined" without deleting evidence.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "arch/plan_store.hh"
#include "base/logging.hh"

using namespace s2ta;
namespace fs = std::filesystem;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: plan_store_admin stats   DIR\n"
                 "       plan_store_admin verify  DIR\n"
                 "       plan_store_admin compact DIR [--cap-mb N] "
                 "[--max-age-s S]\n"
                 "       plan_store_admin quarantine DIR "
                 "[--purge]\n");
    std::exit(2);
}

/** One directory-scan bucket: file count + byte total. */
struct ScanBucket
{
    int64_t files = 0;
    int64_t bytes = 0;
};

/** Classify every regular file in @p dir the way the store does:
 *  published entries end in ".s2ta", torn temps contain ".tmp.",
 *  quarantined files end in ".quar". */
void
scanDir(const std::string &dir, ScanBucket &published,
        ScanBucket &torn, ScanBucket &quarantined, ScanBucket &other)
{
    for (const fs::directory_entry &de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        const int64_t bytes =
            static_cast<int64_t>(de.file_size());
        ScanBucket *bucket = &other;
        if (name.find(".tmp.") != std::string::npos)
            bucket = &torn;
        else if (name.size() >= 5 &&
                 name.compare(name.size() - 5, 5, ".quar") == 0)
            bucket = &quarantined;
        else if (name.size() >= 5 &&
                 name.compare(name.size() - 5, 5, ".s2ta") == 0)
            bucket = &published;
        bucket->files += 1;
        bucket->bytes += bytes;
    }
}

/** Keys of every published entry, parsed from the
 *  "plan_<16-hex>.s2ta" filenames the store writes. */
std::vector<uint64_t>
publishedKeys(const std::string &dir)
{
    std::vector<uint64_t> keys;
    for (const fs::directory_entry &de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        uint64_t key = 0;
        if (std::sscanf(name.c_str(), "plan_%16" SCNx64 ".s2ta",
                        &key) == 1 &&
            name == [&] {
                char buf[32];
                std::snprintf(buf, sizeof(buf),
                              "plan_%016" PRIx64 ".s2ta", key);
                return std::string(buf);
            }()) {
            keys.push_back(key);
        }
    }
    return keys;
}

int
cmdStats(const std::string &dir)
{
    ScanBucket published, torn, quarantined, other;
    scanDir(dir, published, torn, quarantined, other);
    std::printf("store %s\n", dir.c_str());
    std::printf("  published:   %6lld files, %lld bytes\n",
                static_cast<long long>(published.files),
                static_cast<long long>(published.bytes));
    std::printf("  torn temps:  %6lld files, %lld bytes\n",
                static_cast<long long>(torn.files),
                static_cast<long long>(torn.bytes));
    std::printf("  quarantined: %6lld files, %lld bytes\n",
                static_cast<long long>(quarantined.files),
                static_cast<long long>(quarantined.bytes));
    if (other.files > 0) {
        std::printf("  other:       %6lld files, %lld bytes\n",
                    static_cast<long long>(other.files),
                    static_cast<long long>(other.bytes));
    }
    return 0;
}

int
cmdVerify(const std::string &dir)
{
    // Opening the store sweeps torn temps, which is what an
    // operator running verify wants anyway (they are garbage by
    // definition).
    const PlanStore store(dir);
    const std::vector<uint64_t> keys = publishedKeys(dir);
    int64_t ok = 0, rejected = 0;
    for (const uint64_t key : keys) {
        const PlanStore::LoadResult lr = store.load(key);
        if (lr.entry) {
            ok += 1;
        } else if (lr.rejected) {
            rejected += 1;
            std::printf("  REJECTED %s (quarantined)\n",
                        store.pathFor(key).c_str());
        } else {
            // Raced with an eviction or repeated key; a plain miss
            // is not a corruption.
        }
    }
    std::printf("verify %s: %lld ok, %lld rejected of %zu "
                "entries\n",
                dir.c_str(), static_cast<long long>(ok),
                static_cast<long long>(rejected), keys.size());
    return rejected > 0 ? 1 : 0;
}

int
cmdCompact(const std::string &dir, int cap_mb, double max_age_s)
{
    const PlanStore store(dir,
                          static_cast<int64_t>(cap_mb) << 20);
    const PlanStore::CompactResult cr = store.compact(max_age_s);
    std::printf("compact %s (cap %d MB, max age %.0f s)\n",
                dir.c_str(), cap_mb, max_age_s);
    std::printf("  swept %lld torn temps, removed %lld "
                "quarantined, evicted %lld entries (%lld bytes)\n",
                static_cast<long long>(cr.torn_swept),
                static_cast<long long>(cr.quarantine_removed),
                static_cast<long long>(cr.evicted_files),
                static_cast<long long>(cr.evicted_bytes));
    std::printf("  %lld entries / %lld bytes remain\n",
                static_cast<long long>(cr.files),
                static_cast<long long>(cr.bytes));
    return 0;
}

int
cmdQuarantine(const std::string &dir, bool purge)
{
    struct QuarFile
    {
        fs::path path;
        int64_t bytes = 0;
        fs::file_time_type mtime;
    };
    std::vector<QuarFile> files;
    for (const fs::directory_entry &de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".quar") != 0)
            continue;
        files.push_back({de.path(),
                         static_cast<int64_t>(de.file_size()),
                         de.last_write_time()});
    }
    std::sort(files.begin(), files.end(),
              [](const QuarFile &a, const QuarFile &b) {
                  return a.mtime < b.mtime;
              });

    const fs::file_time_type now = fs::file_time_type::clock::now();
    int64_t total_bytes = 0;
    for (const QuarFile &f : files) {
        const double age_s =
            std::chrono::duration<double>(now - f.mtime).count();
        std::printf("  %-48s %10lld bytes  quarantined %.0f s "
                    "ago\n",
                    f.path.filename().string().c_str(),
                    static_cast<long long>(f.bytes), age_s);
        total_bytes += f.bytes;
    }
    std::printf("quarantine %s: %zu files, %lld bytes\n",
                dir.c_str(), files.size(),
                static_cast<long long>(total_bytes));
    if (!purge)
        return files.empty() ? 0 : 1;

    int64_t purged = 0;
    for (const QuarFile &f : files) {
        std::error_code ec;
        if (fs::remove(f.path, ec)) {
            purged += 1;
        } else {
            // Surface the miss but keep purging: a file another
            // process swept first is already gone, which is the
            // goal; a permission error needs the operator.
            std::printf("  UNREMOVED %s (%s)\n",
                        f.path.filename().string().c_str(),
                        ec.message().c_str());
        }
    }
    std::printf("purged %lld of %zu quarantined files\n",
                static_cast<long long>(purged), files.size());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string cmd = argv[1];
    const std::string dir = argv[2];
    if (!fs::is_directory(dir))
        s2ta_fatal("'%s' is not a directory", dir.c_str());

    if (cmd == "stats") {
        if (argc != 3)
            usage();
        return cmdStats(dir);
    }
    if (cmd == "verify") {
        if (argc != 3)
            usage();
        return cmdVerify(dir);
    }
    if (cmd == "compact") {
        int cap_mb = 0;
        double max_age_s = 0.0;
        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    s2ta_fatal("%s needs a value", arg.c_str());
                return argv[++i];
            };
            if (arg == "--cap-mb") {
                cap_mb = std::atoi(value().c_str());
                if (cap_mb < 0) {
                    s2ta_fatal("--cap-mb must be >= 0 (accepted "
                               "values: 0 = uncapped, N >= 1 = "
                               "compact to N MiB)");
                }
            } else if (arg == "--max-age-s") {
                max_age_s = std::atof(value().c_str());
                if (max_age_s < 0.0)
                    s2ta_fatal("--max-age-s must be >= 0");
            } else {
                s2ta_fatal("unknown argument '%s' (accepted flags: "
                           "--cap-mb N, --max-age-s S)",
                           arg.c_str());
            }
        }
        return cmdCompact(dir, cap_mb, max_age_s);
    }
    if (cmd == "quarantine") {
        bool purge = false;
        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--purge") {
                purge = true;
            } else {
                s2ta_fatal("unknown argument '%s' (accepted flags: "
                           "--purge)",
                           arg.c_str());
            }
        }
        return cmdQuarantine(dir, purge);
    }
    usage();
    return 2;
}
