/**
 * @file
 * Quickstart: compress a convolution with DBB, run it on the
 * time-unrolled S2TA-AW array, verify the result bit-exactly, and
 * print performance/energy next to the SA-ZVCG baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "arch/accelerator.hh"
#include "base/table.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

using namespace s2ta;

int
main()
{
    std::printf("S2TA quickstart: one 3x3 conv layer, "
                "4/8 W-DBB + 3/8 A-DBB\n\n");

    // 1. Describe the layer: 28x28x64 input, 128 output channels.
    Conv2dShape shape{64, 28, 28, 128, 3, 3, 1, 1, 1};

    // 2. Make DBB-structured operands. A deployed model would come
    //    from DBB-aware fine-tuning (see examples/dap_training);
    //    here the generator emits the structure directly.
    Rng rng(42);
    LayerWorkload layer;
    layer.name = "conv3x3";
    layer.shape = shape;
    layer.act_nnz = 3; // per-layer A-DBB density (1..5 or 8)
    layer.wgt_nnz = 4; // W-DBB density (the paper's 4/8 point)
    layer.input = makeDbbTensor({shape.in_h, shape.in_w, shape.in_c},
                                layer.act_nnz, rng);
    {
        // Weight blocks run along input channels: generate with
        // channels innermost, then transpose into (kh, kw, ci, co).
        Int8Tensor tmp = makeDbbTensor(
            {3, 3, shape.out_c, shape.in_c}, layer.wgt_nnz, rng);
        layer.weights = Int8Tensor({3, 3, shape.in_c, shape.out_c});
        for (int ky = 0; ky < 3; ++ky)
            for (int kx = 0; kx < 3; ++kx)
                for (int c = 0; c < shape.in_c; ++c)
                    for (int oc = 0; oc < shape.out_c; ++oc)
                        layer.weights(ky, kx, c, oc) =
                            tmp(ky, kx, oc, c);
    }

    // 3. Run on S2TA-AW and on the SA-ZVCG baseline.
    Table t({"Design", "Cycles", "MACs executed", "SRAM bytes",
             "Energy uJ", "Speedup"});
    int64_t base_cycles = 0;
    for (const ArrayConfig &cfg :
         {ArrayConfig::saZvcg(), ArrayConfig::s2taAw(layer.act_nnz)}) {
        AcceleratorConfig acfg;
        acfg.array = cfg;
        const Accelerator acc(acfg);
        const EnergyModel em(TechParams::tsmc16(), acfg);

        // compute_output=true: the model computes the conv through
        // its own datapath (mask/rank mux steering for S2TA).
        const LayerRun run = acc.runLayer(layer, true);

        // 4. Verify against the golden direct convolution.
        const Int32Tensor golden =
            convReference(shape, layer.input, layer.weights);
        if (!(run.output == golden)) {
            std::fprintf(stderr, "FUNCTIONAL MISMATCH\n");
            return 1;
        }

        if (base_cycles == 0)
            base_cycles = run.events.cycles;
        t.addRow({cfg.name(), Table::count(run.events.cycles),
                  Table::count(run.events.macs_executed),
                  Table::count(run.events.wgt_sram_bytes +
                               run.events.act_sram_read_bytes),
                  Table::num(em.energy(run.events).totalUj(), 1),
                  Table::ratio(static_cast<double>(base_cycles) /
                               run.events.cycles)});
    }
    t.print();

    std::printf("\nOutputs verified bit-exact against the golden "
                "convolution.\n");
    std::printf("Expected: ~%.1fx speedup (BZ/NNZ_a = 8/3) and a "
                "large energy win.\n", 8.0 / 3.0);
    return 0;
}
