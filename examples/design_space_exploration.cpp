/**
 * @file
 * Reproduces the paper's design-space methodology (Sec. 7): sweep
 * the five S2TA parameters (TPE dims A, B, C and array dims M, N)
 * under a hard 4-TOPS dense-throughput constraint, evaluate each
 * point's power and area on a typical workload, and report the
 * area-vs-power frontier. The paper's sweep selects the
 * 8x4x4_8x8 time-unrolled outer-product TPE as the lowest-power
 * point; this sweep should find the same neighbourhood.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/models.hh"
#include "base/table.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

using namespace s2ta;

namespace {

struct Candidate
{
    ArrayConfig cfg;
    double power_mw = 0.0;
    double area_mm2 = 0.0;
    bool on_frontier = false;
};

} // anonymous namespace

int
main()
{
    std::printf("S2TA design-space exploration (Sec. 7): "
                "A x B x C _ M x N sweep at 2048 MACs\n\n");

    // Typical workload: 4/8 weights, 4/8 activations.
    Rng rng(7);
    const GemmProblem p = makeDbbGemm(512, 1152, 256, 4, 4, rng);
    RunOptions opt;
    opt.compute_output = false;

    std::vector<Candidate> candidates;
    for (int a : {2, 4, 8, 16}) {
        for (int c : {2, 4, 8, 16}) {
            for (int m : {2, 4, 8, 16, 32}) {
                for (int n : {2, 4, 8, 16, 32}) {
                    // 4-TOPS constraint: A*C MACs per TPE.
                    if (static_cast<int64_t>(a) * c * m * n != 2048)
                        continue;
                    Candidate cand;
                    cand.cfg = ArrayConfig::s2taAw(4);
                    cand.cfg.tpe = {a, 4, c, m, n};
                    AcceleratorConfig acfg;
                    acfg.array = cand.cfg;
                    const EnergyModel em(TechParams::tsmc16(), acfg);
                    const GemmRun run =
                        makeArrayModel(cand.cfg)->run(p, opt);
                    cand.power_mw = em.powerMw(run.events);
                    cand.area_mm2 = em.area().totalMm2();
                    candidates.push_back(cand);
                }
            }
        }
    }

    // Pareto frontier: no other point has both lower power and
    // lower area.
    for (Candidate &c : candidates) {
        c.on_frontier = std::none_of(
            candidates.begin(), candidates.end(),
            [&c](const Candidate &o) {
                return o.power_mw < c.power_mw &&
                       o.area_mm2 < c.area_mm2;
            });
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &x, const Candidate &y) {
                  return x.power_mw < y.power_mw;
              });

    Table t({"Config", "Power mW", "Area mm2", "Frontier"});
    for (const Candidate &c : candidates)
        t.addRow({c.cfg.tpe.toString(), Table::num(c.power_mw, 0),
                  Table::num(c.area_mm2, 2),
                  c.on_frontier ? "*" : ""});
    t.print();

    const Candidate &best = candidates.front();
    std::printf("\nLowest-power design point: %s (%.0f mW, "
                "%.2f mm2)\n", best.cfg.tpe.toString().c_str(),
                best.power_mw, best.area_mm2);
    std::printf("Paper's pick: 8x4x4_8x8 (the time-unrolled "
                "outer-product TPE).\nLarger TPEs amortize operand "
                "movement across more MACs; the frontier\nflattens "
                "once the TPE covers ~32 MACs, matching Sec. 6.1's "
                "data-reuse argument.\n");
    return 0;
}
