/**
 * @file
 * Full-model inference walkthrough: run one of the zoo CNNs through
 * the S2TA-AW accelerator with its per-layer DBB sparsity profile
 * and print a per-layer report (cycles, utilization, energy,
 * memory-boundedness) plus model totals.
 *
 * Usage: model_inference [alexnet|vgg16|mobilenet|resnet50|lenet5]
 * (default: mobilenet)
 */

#include <cstdio>
#include <cstring>

#include "arch/accelerator.hh"
#include "base/table.hh"
#include "energy/energy_model.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;

namespace {

ModelSpec
pickModel(const char *name)
{
    if (std::strcmp(name, "alexnet") == 0)
        return alexNet();
    if (std::strcmp(name, "vgg16") == 0)
        return vgg16();
    if (std::strcmp(name, "mobilenet") == 0)
        return mobileNetV1();
    if (std::strcmp(name, "resnet50") == 0)
        return resNet50();
    if (std::strcmp(name, "lenet5") == 0)
        return leNet5();
    s2ta_fatal("unknown model '%s' (try alexnet, vgg16, mobilenet, "
               "resnet50, lenet5)", name);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *model_name = argc > 1 ? argv[1] : "mobilenet";
    const ModelSpec spec = pickModel(model_name);

    std::printf("Running %s on S2TA-AW (16nm, 8x4x4_8x8, 4 TOPS "
                "dense peak)\n\n", spec.name.c_str());

    Rng rng(2024);
    const ModelWorkload mw = buildModelWorkload(spec, rng);

    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::s2taAw(4);
    const Accelerator acc(acfg);
    const EnergyModel em(TechParams::tsmc16(), acfg);

    Table t({"Layer", "A-DBB", "W-DBB", "MMACs", "kCycles",
             "MACs/cyc", "Energy uJ", "Bound"});
    EventCounts total;
    int64_t total_macs = 0;
    for (size_t i = 0; i < mw.layers.size(); ++i) {
        const LayerRun lr = acc.runLayer(mw.layers[i]);
        total.add(lr.events);
        total_macs += lr.dense_macs;
        t.addRow({lr.name,
                  Table::num(mw.layers[i].act_nnz, 0) + "/8",
                  Table::num(mw.layers[i].wgt_nnz, 0) + "/8",
                  Table::num(static_cast<double>(lr.dense_macs) /
                             1e6, 1),
                  Table::num(static_cast<double>(lr.events.cycles) /
                             1e3, 0),
                  Table::num(static_cast<double>(lr.dense_macs) /
                             static_cast<double>(lr.events.cycles),
                             0),
                  Table::num(em.energy(lr.events).totalUj(), 1),
                  lr.memory_bound ? "memory" : "compute"});
    }
    t.print();

    const double ms = em.runtimeMs(total);
    const double uj = em.energy(total).totalUj();
    std::printf("\nModel totals: %.2f GMACs | %.3f ms/inference "
                "(%.0f inf/s) | %.0f uJ/inference | %.2f TOPS/W\n",
                static_cast<double>(total_macs) / 1e9, ms,
                1000.0 / ms, uj, em.effectiveTopsPerWatt(total));
    std::printf("Dense-equivalent utilization: %.1f%% of the 2048 "
                "MACs (sparsity makes >100%% possible).\n",
                static_cast<double>(total_macs) /
                    static_cast<double>(total.cycles) / 2048.0 *
                    100.0);
    return 0;
}
