/**
 * @file
 * DBB-aware training walkthrough (paper Sec. 8.1): train a small
 * CNN, then show the three-act accuracy arc of Dynamic Activation
 * Pruning — baseline, one-shot DAP (accuracy drops), DAP-aware
 * fine-tuning with straight-through gradients (accuracy recovers) —
 * followed by joint A/W-DBB fine-tuning.
 */

#include <cstdio>

#include "base/table.hh"
#include "nn/trainer.hh"

using namespace s2ta;

int
main()
{
    std::printf("DAP / W-DBB fine-tuning demo (synthetic vision "
                "task)\n\n");

    SyntheticVisionConfig vcfg;
    Rng drng(0x5EED5);
    const Dataset train_set = makeSyntheticVision(900, vcfg, drng);
    const Dataset test_set = makeSyntheticVision(300, vcfg, drng);

    Rng rng(1);
    Network net = makeTestbedCnn(vcfg.channels, vcfg.num_classes,
                                 rng);

    // Act 1: baseline training.
    TrainConfig base;
    base.epochs = 14;
    base.lr = 0.04f;
    base.lr_decay = 0.85f;
    base.log_every = 4;
    std::printf("[1/4] training float baseline...\n");
    train(net, train_set, base);
    const double acc_base = evaluate(net, test_set);

    // Act 2: switch DAP on at 2/8 without fine-tuning. This is the
    // paper's MobileNet 71% -> 56.1% moment.
    net.enableDap(2);
    const double acc_raw = evaluate(net, test_set);

    // Act 3: DAP-aware fine-tuning; the DAP layers stay active in
    // the forward pass and back-propagate through the binary keep
    // mask (straight-through estimator).
    std::printf("[2/4] DAP-aware fine-tuning at 2/8...\n");
    TrainConfig dap_ft;
    dap_ft.epochs = 5;
    dap_ft.lr = 0.015f;
    dap_ft.lr_decay = 0.8f;
    train(net, train_set, dap_ft);
    const double acc_dap = evaluate(net, test_set);

    // Act 4: add 4/8 W-DBB on top (joint A/W-DBB deployment).
    std::printf("[3/4] joint A/W-DBB fine-tuning (+4/8 weights)..."
                "\n");
    TrainConfig joint;
    joint.epochs = 5;
    joint.lr = 0.015f;
    joint.lr_decay = 0.8f;
    joint.use_weight_dbb = true;
    joint.weight_dbb = DbbSpec{4, 8};
    joint.weight_dbb_ramp = 2;
    train(net, train_set, joint);
    net.fakeQuantizeWeightsInt8();
    const double acc_joint = evaluate(net, test_set);

    std::printf("[4/4] results\n\n");
    Table t({"Stage", "Test accuracy", "Delta vs baseline"});
    auto pct = [](double v) { return Table::percent(v, 1); };
    t.addRow({"Float baseline", pct(acc_base), "-"});
    t.addRow({"DAP 2/8, no fine-tune", pct(acc_raw),
              Table::num((acc_raw - acc_base) * 100.0, 1) + " pp"});
    t.addRow({"DAP 2/8, fine-tuned", pct(acc_dap),
              Table::num((acc_dap - acc_base) * 100.0, 1) + " pp"});
    t.addRow({"Joint A/W-DBB + INT8", pct(acc_joint),
              Table::num((acc_joint - acc_base) * 100.0, 1) +
                  " pp"});
    t.print();

    std::printf("\nExpected shape (paper Sec. 8.1): a visible drop "
                "without fine-tuning,\nrecovery to within ~1-2 pp "
                "with DAP-aware training.\n");
    return 0;
}
